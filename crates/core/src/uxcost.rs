use dream_sim::{canonical_sum, Metrics, ModelKey};

/// One model's row of the UXCost computation (Algorithm 2's loop body).
#[derive(Debug, Clone)]
pub struct ModelCostRow {
    /// The deployed model.
    pub key: ModelKey,
    /// Its network name.
    pub model_name: &'static str,
    /// Counted frames.
    pub total_frames: u64,
    /// Violated frames (late + dropped + unfinished).
    pub violated_frames: u64,
    /// `Rate_DLV[m]` including the `1/(2·total)` floor (lines 6–8).
    pub rate_dlv: f64,
    /// `NormEnergy[m]` (line 5).
    pub norm_energy: f64,
}

/// The UXCost report of Algorithm 2: per-model deadline-violation rates and
/// normalised energies, their sums, and the product that is UXCost.
///
/// UXCost is the paper's real-time analogue of energy-delay product: lower
/// is better, and a scheduler can only excel by keeping *both* violations
/// and energy low.
#[derive(Debug, Clone)]
pub struct UxCostReport {
    rows: Vec<ModelCostRow>,
    overall_rate_dlv: f64,
    overall_norm_energy: f64,
}

impl UxCostReport {
    /// Runs Algorithm 2 over simulation metrics. Models that counted no
    /// frames (e.g. a cascade that never fired in a short window) are
    /// excluded from both sums.
    pub fn from_metrics(metrics: &Metrics) -> Self {
        let mut rows = Vec::new();
        for (key, stats) in metrics.models() {
            let (Some(rate_dlv), Some(norm_energy)) =
                (stats.violation_rate(), stats.normalized_energy())
            else {
                continue;
            };
            rows.push(ModelCostRow {
                key: *key,
                model_name: stats.model_name,
                total_frames: stats.released,
                violated_frames: stats.violated(),
                rate_dlv,
                norm_energy,
            });
        }
        UxCostReport {
            overall_rate_dlv: canonical_sum(rows.iter().map(|r| r.rate_dlv)),
            overall_norm_energy: canonical_sum(rows.iter().map(|r| r.norm_energy)),
            rows,
        }
    }

    /// Per-model rows in deterministic order.
    pub fn rows(&self) -> &[ModelCostRow] {
        &self.rows
    }

    /// `OverallRate_DLV` (line 10).
    pub fn overall_rate_dlv(&self) -> f64 {
        self.overall_rate_dlv
    }

    /// `OverallNormEnergy` (line 11).
    pub fn overall_norm_energy(&self) -> f64 {
        self.overall_norm_energy
    }

    /// `UXCost = OverallRate_DLV · OverallNormEnergy` (line 12).
    pub fn uxcost(&self) -> f64 {
        self.overall_rate_dlv * self.overall_norm_energy
    }
}

impl std::fmt::Display for UxCostReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<20} {:>8} {:>8} {:>10} {:>10}",
            "model", "frames", "violated", "rate_dlv", "norm_e"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<20} {:>8} {:>8} {:>10.4} {:>10.4}",
                r.model_name, r.total_frames, r.violated_frames, r.rate_dlv, r.norm_energy
            )?;
        }
        write!(
            f,
            "UXCost = {:.5} (ΣDLV {:.4} × ΣE {:.4})",
            self.uxcost(),
            self.overall_rate_dlv,
            self.overall_norm_energy
        )
    }
}

/// Convenience: Algorithm 2 in one call.
pub fn uxcost_of(metrics: &Metrics) -> f64 {
    UxCostReport::from_metrics(metrics).uxcost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{Platform, PlatformPreset};
    use dream_models::{CascadeProbability, Scenario, ScenarioKind};
    use dream_sim::{Assignment, Decision, Millis, Scheduler, SimulationBuilder, SystemView};

    struct Greedy;
    impl Scheduler for Greedy {
        fn name(&self) -> &str {
            "greedy"
        }
        fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
            let mut d = Decision::none();
            let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
            for t in view.ready_tasks() {
                let Some(acc) = idle.pop() else { break };
                d.assignments.push(Assignment::single(t.id(), acc));
            }
            d
        }
    }

    fn metrics(kind: ScenarioKind) -> Metrics {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(kind, CascadeProbability::default_paper());
        let mut s = Greedy;
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(600))
            .seed(11)
            .run(&mut s)
            .unwrap()
            .into_metrics()
    }

    #[test]
    fn uxcost_is_product_of_sums() {
        let m = metrics(ScenarioKind::ArSocial);
        let r = UxCostReport::from_metrics(&m);
        assert!((r.uxcost() - r.overall_rate_dlv() * r.overall_norm_energy()).abs() < 1e-12);
        assert!(r.uxcost() > 0.0, "floor keeps UXCost positive");
        let sum_dlv: f64 = r.rows().iter().map(|x| x.rate_dlv).sum();
        assert!((sum_dlv - r.overall_rate_dlv()).abs() < 1e-12);
    }

    #[test]
    fn zero_violation_models_use_floor() {
        let m = metrics(ScenarioKind::ArCall);
        let r = UxCostReport::from_metrics(&m);
        for row in r.rows() {
            if row.violated_frames == 0 {
                assert!(
                    (row.rate_dlv - 1.0 / (2.0 * row.total_frames as f64)).abs() < 1e-12,
                    "{}",
                    row.model_name
                );
            }
        }
    }

    #[test]
    fn report_displays_all_models() {
        let m = metrics(ScenarioKind::ArCall);
        let r = UxCostReport::from_metrics(&m);
        let s = r.to_string();
        assert!(s.contains("GNMT"));
        assert!(s.contains("UXCost"));
        assert!((uxcost_of(&m) - r.uxcost()).abs() < 1e-15);
    }
}
