//! Sort-once greedy maximum-score matching over the MapScore table.
//!
//! The job assignment & dispatch engine (Figure 4) repeatedly dispatches
//! the best remaining (ready task, idle accelerator) pair. A naive
//! implementation rescans the whole table per pick — O(k·T·A) for k
//! dispatches. Sorting the candidate list once and walking it with
//! occupancy flags yields the *identical* pick sequence in
//! O(T·A·log(T·A)): at each step, the first unused candidate in sorted
//! order is exactly the maximum over unused pairs the rescan would find.
//!
//! # Tie-breaking
//!
//! Equal MapScores resolve deterministically by **lowest (task index,
//! accelerator index)** — the same pair a row-major rescan keeping the
//! first strict maximum would select. This ordering is part of the
//! scheduler's contract (determinism tests fingerprint every run) and is
//! regression-tested with exact float ties.

use std::cmp::Ordering;

/// One (task, accelerator) candidate pair in the MapScore table.
///
/// Indices are rows/columns of the per-decision table: `task` indexes the
/// decision's ready-task list, `acc` its idle-accelerator list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The pair's MapScore value. Must not be NaN (unit scores are finite
    /// by construction; urgency is slack-floored).
    pub score: f64,
    /// Row: index into the decision's ready-task list.
    pub task: u32,
    /// Column: index into the decision's idle-accelerator list.
    pub acc: u32,
}

/// Sorts `candidates` into dispatch order (descending score, ties by
/// ascending (task, acc)) and emits the greedy matching: each candidate
/// whose task **and** accelerator are still unused claims both.
///
/// `used_tasks` / `used_accs` must be at least as long as the largest
/// index used and all-false on entry; they come back marked with the
/// matched rows/columns, so callers holding reusable scratch can clear
/// them afterwards.
pub fn greedy_assign(
    candidates: &mut [Candidate],
    used_tasks: &mut [bool],
    used_accs: &mut [bool],
    mut emit: impl FnMut(u32, u32),
) {
    debug_assert!(
        candidates.iter().all(|c| !c.score.is_nan()),
        "MapScore values must be non-NaN for a total dispatch order"
    );
    candidates.sort_unstable_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.task.cmp(&b.task))
            .then_with(|| a.acc.cmp(&b.acc))
    });
    for c in candidates.iter() {
        if used_tasks[c.task as usize] || used_accs[c.acc as usize] {
            continue;
        }
        used_tasks[c.task as usize] = true;
        used_accs[c.acc as usize] = true;
        emit(c.task, c.acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mut cands: Vec<Candidate>, n_tasks: usize, n_accs: usize) -> Vec<(u32, u32)> {
        let mut used_t = vec![false; n_tasks];
        let mut used_a = vec![false; n_accs];
        let mut out = Vec::new();
        greedy_assign(&mut cands, &mut used_t, &mut used_a, |t, a| {
            out.push((t, a));
        });
        out
    }

    fn table(scores: &[&[f64]]) -> Vec<Candidate> {
        let mut v = Vec::new();
        for (ti, row) in scores.iter().enumerate() {
            for (ai, &score) in row.iter().enumerate() {
                v.push(Candidate {
                    score,
                    task: ti as u32,
                    acc: ai as u32,
                });
            }
        }
        v
    }

    /// Reference implementation: the original repeated-rescan greedy
    /// (first strict maximum in row-major order wins).
    fn rescan(scores: &[&[f64]]) -> Vec<(u32, u32)> {
        let mut used_t = vec![false; scores.len()];
        let mut used_a = vec![false; scores.first().map_or(0, |r| r.len())];
        let mut out = Vec::new();
        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for (ti, row) in scores.iter().enumerate() {
                if used_t[ti] {
                    continue;
                }
                for (ai, &s) in row.iter().enumerate() {
                    if used_a[ai] {
                        continue;
                    }
                    if best.map(|(_, _, b)| s > b).unwrap_or(true) {
                        best = Some((ti, ai, s));
                    }
                }
            }
            let Some((ti, ai, _)) = best else { break };
            used_t[ti] = true;
            used_a[ai] = true;
            out.push((ti as u32, ai as u32));
        }
        out
    }

    #[test]
    fn picks_global_maximum_first() {
        let scores: &[&[f64]] = &[&[1.0, 5.0], &[3.0, 2.0]];
        assert_eq!(run(table(scores), 2, 2), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn exact_float_ties_resolve_by_task_then_acc_index() {
        // Every cell the exact same bit pattern: the matching must walk
        // the diagonal (0,0), (1,1), … — lowest task index first, then
        // lowest accelerator index among its columns.
        let t = 0.1 + 0.2; // a value with a non-trivial representation
        let scores: &[&[f64]] = &[&[t, t, t], &[t, t, t], &[t, t, t]];
        assert_eq!(run(table(scores), 3, 3), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn partial_tie_prefers_lower_acc_within_a_task() {
        // Task 1's two cells tie for the global maximum: task 1 must take
        // acc 0 (lower index), leaving acc 1 to task 0.
        let scores: &[&[f64]] = &[&[1.0, 1.0], &[7.0, 7.0]];
        assert_eq!(run(table(scores), 2, 2), vec![(1, 0), (0, 1)]);
    }

    #[test]
    fn matches_repeated_rescan_reference_on_mixed_tables() {
        let tables: &[&[&[f64]]] = &[
            &[&[1.0, 5.0, 2.0], &[3.0, 2.0, 9.0]],
            &[&[4.0], &[4.0], &[4.0]],
            &[&[2.0, 2.0], &[2.0, 2.0], &[1.0, 3.0]],
            &[&[-1.0, -2.0], &[-3.0, -1.0]],
            &[&[0.0, -0.0], &[-0.0, 0.0]],
        ];
        for scores in tables {
            let n_accs = scores[0].len();
            assert_eq!(
                run(table(scores), scores.len(), n_accs),
                rescan(scores),
                "{scores:?}"
            );
        }
    }

    #[test]
    fn more_tasks_than_accelerators_saturates_accelerators() {
        let scores: &[&[f64]] = &[&[1.0], &[2.0], &[3.0]];
        assert_eq!(run(table(scores), 3, 1), vec![(2, 0)]);
    }
}
