use std::time::Instant;

use dream_models::VariantId;
use dream_sim::{
    canonical_sum, Assignment, Decision, DecisionRecord, Scheduler, SchedulerCapabilities,
    SystemView, Task, TaskEvent, TaskEventKind, TaskId,
};

use crate::matching::{greedy_assign, Candidate};
use crate::{AdaptivityEngine, DreamConfig, FrameDropEngine, ScoreContext, ScoreParams};

/// Cumulative wall-clock spent in each stage of
/// [`DreamScheduler::schedule`], recorded only when
/// [`DreamScheduler::enable_stage_timing`] was called (the hot path pays
/// a single branch otherwise). Consumed by the hotpath bench's per-stage
/// report in `BENCH_hotpath.json`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageTimings {
    /// Scheduler invocations measured.
    pub invocations: u64,
    /// Building the MapScore candidate table (per-task terms + cached
    /// table lookups).
    pub score_build_ns: u64,
    /// Sorting the candidates and emitting the greedy matching.
    pub matching_ns: u64,
    /// Everything else inside `schedule` (supernet switching, frame drop,
    /// adaptivity tick, decision bookkeeping).
    pub other_ns: u64,
}

impl StageTimings {
    /// Total measured scheduler time.
    pub fn total_ns(&self) -> u64 {
        self.score_build_ns + self.matching_ns + self.other_ns
    }
}

/// Reusable per-invocation buffers: held on the scheduler so the steady
/// state of [`DreamScheduler::schedule`] performs no heap allocation
/// (the returned [`Decision`] itself is the only remaining allocation).
#[derive(Debug, Default)]
struct Scratch {
    /// Ready tasks surviving the drop filter, ascending by id (mirrors
    /// the view's ready index order).
    ready: Vec<TaskId>,
    /// Tasks switched to a new variant this invocation, ascending by id
    /// (pushed in ready-index order), so membership is a binary search
    /// instead of the former O(n) `Vec::contains` scan.
    switched: Vec<TaskId>,
    /// The flattened MapScore table as (score, row, column) candidates.
    candidates: Vec<Candidate>,
    /// Occupancy flags over `ready` rows.
    used_tasks: Vec<bool>,
    /// Occupancy flags over the view's idle-accelerator columns.
    used_accs: Vec<bool>,
}

/// The DREAM scheduler (§4): MapScore-driven job assignment with optional
/// smart frame drop, supernet switching, and online (α, β) adaptation.
///
/// Construct one of the paper's Table 4 configurations with
/// [`DreamConfig::mapscore`], [`DreamConfig::smart_drop`], or
/// [`DreamConfig::full`], then pass the scheduler to a
/// [`dream_sim::SimulationBuilder`].
///
/// # Decision-path structure
///
/// Each invocation computes the two accelerator-independent unit scores
/// once per ready task ([`ScoreContext::task_terms`]), combines them with
/// the static per-(layer, accelerator) tables precomputed by
/// [`dream_sim::WorkloadSet::build`], and resolves the assignment with a
/// sort-once greedy matching ([`crate::greedy_assign`]) whose equal-score
/// ties break deterministically by lowest (task index, accelerator
/// index). All intermediate vectors are reusable scratch held on the
/// scheduler.
#[derive(Debug)]
pub struct DreamScheduler {
    config: DreamConfig,
    name: String,
    adaptivity: AdaptivityEngine,
    drop_engine: FrameDropEngine,
    supernet_switches: u64,
    scratch: Scratch,
    timing: Option<StageTimings>,
    /// Records explaining the last invocation's chosen assignments,
    /// populated only when the view asks
    /// ([`SystemView::wants_decision_records`]) and drained by the engine
    /// via [`Scheduler::take_decision_records`].
    decision_records: Vec<DecisionRecord>,
}

impl DreamScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: DreamConfig) -> Self {
        let name = config.variant_name().to_string();
        let adaptivity = AdaptivityEngine::new(config.adaptivity.clone(), config.params);
        let drop_engine = FrameDropEngine::new(
            config.drop_window,
            config.max_drops_per_window,
            config.slack_floor_ns,
        );
        DreamScheduler {
            config,
            name,
            adaptivity,
            drop_engine,
            supernet_switches: 0,
            scratch: Scratch::default(),
            timing: None,
            decision_records: Vec::new(),
        }
    }

    /// Starts recording per-stage wall-clock timings (see
    /// [`StageTimings`]). Timing never influences decisions; it adds two
    /// `Instant` reads per stage, so benches keep it off for headline
    /// numbers and on for the stage breakdown.
    pub fn enable_stage_timing(&mut self) {
        self.timing = Some(StageTimings::default());
    }

    /// The per-stage timings accumulated so far, if enabled.
    pub fn stage_timings(&self) -> Option<StageTimings> {
        self.timing
    }

    /// The configuration in use.
    pub fn config(&self) -> &DreamConfig {
        &self.config
    }

    /// The (α, β) pair the scheduler would use right now.
    pub fn current_params(&self) -> ScoreParams {
        if self.config.online_adaptation {
            self.adaptivity.params()
        } else {
            self.config.params
        }
    }

    /// Replaces the locked parameters (offline tuning hands results in
    /// through this).
    pub fn set_params(&mut self, params: ScoreParams) {
        self.config.params = params;
    }

    /// The online adaptivity engine (inspect its tuning history).
    pub fn adaptivity(&self) -> &AdaptivityEngine {
        &self.adaptivity
    }

    /// Frames dropped so far.
    pub fn total_drops(&self) -> u64 {
        self.drop_engine.total_drops()
    }

    /// Supernet variant switches issued so far.
    pub fn supernet_switches(&self) -> u64 {
        self.supernet_switches
    }

    /// The platform's effective parallelism: capacity weighted by peak
    /// throughput. Platform-static, so `schedule` computes it at most once
    /// per invocation (lazily, on the first supernet candidate).
    fn effective_parallelism(view: &SystemView<'_>) -> f64 {
        let peak_max = view
            .platform()
            .accelerators()
            .iter()
            .map(dream_cost::AcceleratorConfig::peak_macs_per_ns)
            .fold(0.0f64, f64::max); // detlint: allow(float-fold) -- max-reduce, not a sum: order-independent for finite inputs
        canonical_sum(
            view.platform()
                .accelerators()
                .iter()
                .map(|a| a.peak_macs_per_ns() / peak_max),
        )
    }

    /// Supernet switching (§4.5.1): pick the heaviest variant whose
    /// remaining work fits the task's slack after accounting for the other
    /// ready work competing for the same accelerators; fall back to the
    /// lightest when nothing fits.
    ///
    /// The caller has already established that `node` is `task`'s node,
    /// is a supernet, and that the task has not started — `schedule` is
    /// the single place that filter lives.
    fn choose_variant(
        &self,
        task: &Task,
        node: &dream_sim::NodeInfo,
        view: &SystemView<'_>,
        n_effective: f64,
    ) -> VariantId {
        let slack = task.slack_ns(view.now());
        let variants = node.variant_count();
        if slack <= 0.0 {
            return VariantId(variants - 1);
        }
        // Expected queueing delay: the remaining work of every *other*
        // active task (ready or running), spread over the platform's
        // effective parallelism. Small sub-accelerators contribute less
        // than a full unit — a 1K array retires work at half the rate of a
        // 2K one, so capacity is weighted by peak throughput.
        let other_work: f64 = canonical_sum(
            view.tasks()
                .filter(|t| t.id() != task.id())
                .map(|t| t.to_go_avg_ns(view.workload())),
        );
        // Only the fraction of queued work that actually precedes this
        // task's layers delays it; the weight is calibrated so the fit
        // threshold sits inside the observed steady-state load
        // distribution — per-decision load variance then produces the
        // paper's Figure 14 behaviour: mostly "Original" under light load,
        // shifting toward lighter variants as cascades saturate.
        const QUEUE_WEIGHT: f64 = 0.88;
        let queue_delay = QUEUE_WEIGHT * other_work / n_effective.max(1.0);
        for v in 0..variants {
            let to_go: f64 = canonical_sum(
                node.variant_layers(VariantId(v))
                    .iter()
                    .map(|&l| view.workload().avg_latency_ns(l)),
            );
            if queue_delay + to_go * self.config.supernet_safety <= slack {
                return VariantId(v);
            }
        }
        VariantId(variants - 1)
    }
}

impl Scheduler for DreamScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn capabilities(&self) -> SchedulerCapabilities {
        SchedulerCapabilities {
            cascade: true,
            concurrent: true,
            realtime: true,
            task_dynamicity: true,
            model_dynamicity: true,
            energy_aware: true,
            heterogeneity_aware: true,
        }
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        #[allow(clippy::disallowed_methods)]
        // opt-in stage timing instrumentation; never feeds a decision
        let t_enter = self.timing.is_some().then(Instant::now); // detlint: allow(wall-clock) -- opt-in stage timing instrumentation; never feeds a decision
        if self.config.online_adaptation {
            self.adaptivity.tick(view.now());
        }
        let params = self.current_params();
        let ctx = ScoreContext::from_view(view, self.config.slack_floor_ns);
        let mut decision = Decision::none();

        // 1. Supernet switching (§4.5.1): every waiting supernet inference
        //    that has not started yet re-evaluates its variant against the
        //    current load, so an overloaded system lightens queued requests
        //    *before* they become hopeless (Figure 6). Switched ids land in
        //    ready-index (= ascending id) order, so the scratch list stays
        //    sorted for the binary-search membership test below.
        self.scratch.switched.clear();
        if self.config.supernet_switching {
            let mut n_effective: Option<f64> = None;
            for task in view.ready_tasks() {
                let node = view.workload().node(task.key());
                if !node.is_supernet() || task.started() {
                    continue;
                }
                let n_eff = *n_effective.get_or_insert_with(|| Self::effective_parallelism(view));
                let variant = self.choose_variant(task, node, view, n_eff);
                if variant != task.variant() {
                    decision.variant_switches.push((task.id(), variant));
                    self.supernet_switches += 1;
                    self.scratch.switched.push(task.id());
                }
            }
        }

        // 2. Smart frame drop (§4.2.1) — at most one victim per invocation.
        //    A task just lightened by a variant switch gets a chance to
        //    make its deadline before being considered for dropping.
        let mut dropped: Option<TaskId> = None;
        if self.config.smart_drop {
            if let Some(victim) = self.drop_engine.evaluate(view) {
                if self.scratch.switched.binary_search(&victim.task).is_err() {
                    let key = view
                        .task(victim.task)
                        .expect("drop victims come from the view")
                        .key();
                    self.drop_engine.record_drop(key);
                    decision.drops.push(victim.task);
                    dropped = Some(victim.task);
                }
            }
        }

        // 3. MapScore table over (ready task, idle accelerator) pairs
        //    (Figure 4's MapScore engine). The accelerator-independent
        //    terms are computed once per task; each cell is then a couple
        //    of precomputed-table loads and multiply-adds.
        #[allow(clippy::disallowed_methods)]
        // opt-in stage timing instrumentation; never feeds a decision
        let t_score = self.timing.is_some().then(Instant::now); // detlint: allow(wall-clock) -- opt-in stage timing instrumentation; never feeds a decision
        let scratch = &mut self.scratch;
        scratch.ready.clear();
        scratch.ready.extend(
            view.ready_ids()
                .iter()
                .copied()
                .filter(|&id| Some(id) != dropped),
        );
        let idle_ids = view.idle_ids();
        if scratch.ready.is_empty() || idle_ids.is_empty() {
            if let (Some(timing), Some(t0), Some(t1)) = (self.timing.as_mut(), t_enter, t_score) {
                timing.invocations += 1;
                timing.other_ns += (t1 - t0).as_nanos() as u64;
                timing.score_build_ns += t1.elapsed().as_nanos() as u64;
            }
            return decision;
        }
        scratch.candidates.clear();
        for (ti, &tid) in scratch.ready.iter().enumerate() {
            let task = view.task(tid).expect("ready ids are live");
            let terms = ctx.task_terms(task);
            for (ai, &aid) in idle_ids.iter().enumerate() {
                let acc = view.acc(aid);
                scratch.candidates.push(Candidate {
                    score: ctx.map_score_with(terms, task, acc, params).value,
                    task: ti as u32,
                    acc: ai as u32,
                });
            }
        }

        // 4. Greedy maximum-score matching (the job assignment & dispatch
        //    engine): sort the candidates once and dispatch in order; ties
        //    resolve by lowest (task, acc) index (see `crate::matching`).
        #[allow(clippy::disallowed_methods)]
        // opt-in stage timing instrumentation; never feeds a decision
        let t_match = self.timing.is_some().then(Instant::now); // detlint: allow(wall-clock) -- opt-in stage timing instrumentation; never feeds a decision
        scratch.used_tasks.clear();
        scratch.used_tasks.resize(scratch.ready.len(), false);
        scratch.used_accs.clear();
        scratch.used_accs.resize(idle_ids.len(), false);
        let ready = &scratch.ready;
        greedy_assign(
            &mut scratch.candidates,
            &mut scratch.used_tasks,
            &mut scratch.used_accs,
            |ti, ai| {
                decision.assignments.push(Assignment::single(
                    ready[ti as usize],
                    idle_ids[ai as usize],
                ));
            },
        );

        // 5. Decision records (flight-recorder introspection): recompute
        //    the MapScore breakdown for the *chosen* pairs only — O(matches)
        //    extra float work on already-cached tables, requested by the
        //    view only while a trace is recording, and never feeding back
        //    into any decision (the assignments above are already final).
        if view.wants_decision_records() {
            for a in &decision.assignments {
                let task = view.task(a.task).expect("assignments come from the view");
                let acc = view.acc(a.accs[0]);
                let score = ctx.map_score(task, acc, params);
                let b = score.breakdown;
                self.decision_records.push(DecisionRecord {
                    task: a.task.0,
                    acc: a.accs[0].0 as u32,
                    score: score.value,
                    terms: [
                        b.urgency,
                        b.lat_pref,
                        b.starvation,
                        b.pref_energy,
                        b.cost_switch,
                        b.energy,
                    ],
                });
            }
        }
        if let (Some(timing), Some(t0), Some(t1), Some(t2)) =
            (self.timing.as_mut(), t_enter, t_score, t_match)
        {
            timing.invocations += 1;
            timing.other_ns += (t1 - t0).as_nanos() as u64;
            timing.score_build_ns += (t2 - t1).as_nanos() as u64;
            timing.matching_ns += t2.elapsed().as_nanos() as u64;
        }
        decision
    }

    fn on_task_event(&mut self, event: &TaskEvent) {
        if let TaskEventKind::Released = event.kind {
            self.drop_engine.on_released(event.key);
        }
        if self.config.online_adaptation {
            self.adaptivity.on_task_event(event);
        }
    }

    fn take_decision_records(&mut self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.decision_records)
    }

    fn on_phase_start(&mut self, _phase: usize, model_names: &[&'static str]) {
        if self.config.online_adaptation {
            self.adaptivity
                .on_phase_start(dream_sim::SimTime::ZERO, model_names);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{Platform, PlatformPreset};
    use dream_models::{CascadeProbability, Scenario, ScenarioKind};
    use dream_sim::{Metrics, Millis, SimulationBuilder};

    fn run(
        config: DreamConfig,
        kind: ScenarioKind,
        preset: PlatformPreset,
        ms: u64,
    ) -> (Metrics, DreamScheduler) {
        let platform = Platform::preset(preset);
        let scenario = Scenario::new(kind, CascadeProbability::default_paper());
        let mut sched = DreamScheduler::new(config);
        let m = SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(ms))
            .seed(17)
            .run(&mut sched)
            .unwrap()
            .into_metrics();
        (m, sched)
    }

    #[test]
    fn dream_runs_cleanly_on_every_scenario() {
        for kind in ScenarioKind::all() {
            let (m, _) = run(
                DreamConfig::full(),
                kind,
                PlatformPreset::Hetero4kWs1Os2,
                400,
            );
            assert_eq!(m.invalid_decisions, 0, "{kind}");
            assert!(m.layer_executions > 0, "{kind}");
        }
    }

    #[test]
    fn smart_drop_respects_rate_cap() {
        let (m, sched) = run(
            DreamConfig::smart_drop(),
            ScenarioKind::ArSocial,
            PlatformPreset::Hetero4kWs1Os2,
            1500,
        );
        // Under the overloaded drone scenario drops should occur…
        assert!(sched.total_drops() > 0, "expected drops under overload");
        // …but never beyond the 2-in-10 cap per model.
        for (_, s) in m.models() {
            assert!(
                s.dropped as f64 <= 0.25 * s.released.max(1) as f64 + 2.0,
                "{}: {} drops of {}",
                s.model_name,
                s.dropped,
                s.released
            );
        }
        assert_eq!(m.invalid_decisions, 0);
    }

    #[test]
    fn mapscore_config_never_drops_or_switches() {
        let (m, sched) = run(
            DreamConfig::mapscore(),
            ScenarioKind::DroneIndoor,
            PlatformPreset::Hetero4kWs1Os2,
            600,
        );
        assert_eq!(sched.total_drops(), 0);
        assert_eq!(sched.supernet_switches(), 0);
        for (_, s) in m.models() {
            assert_eq!(s.dropped, 0, "{}", s.model_name);
        }
    }

    #[test]
    fn supernet_switching_uses_lighter_variants_under_load() {
        let variant_histogram = |p: f64| {
            let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
            let scenario =
                Scenario::new(ScenarioKind::ArSocial, CascadeProbability::new(p).unwrap());
            let mut sched = DreamScheduler::new(DreamConfig::full());
            let m = SimulationBuilder::new(platform, scenario)
                .duration(Millis::new(1500))
                .seed(17)
                .run(&mut sched)
                .unwrap()
                .into_metrics();
            let hist = m
                .models()
                .find(|(_, s)| s.model_name == "Once-for-All")
                .map(|(_, s)| s.variant_runs.clone())
                .expect("AR_Social deploys the OFA supernet");
            hist
        };
        let light_load = variant_histogram(0.5);
        let heavy_load = variant_histogram(0.99);
        assert_eq!(light_load.len(), 4);
        let lighter_heavy: u64 = heavy_load.iter().skip(1).sum();
        assert!(
            lighter_heavy > 0,
            "heavy load should deploy lighter variants: {heavy_load:?}"
        );
        // Figure 14's shape: the Original share shrinks as load grows.
        let orig_share = |h: &Vec<u64>| h[0] as f64 / h.iter().sum::<u64>().max(1) as f64;
        assert!(
            orig_share(&heavy_load) < orig_share(&light_load) + 1e-9,
            "light {light_load:?} heavy {heavy_load:?}"
        );
    }

    #[test]
    fn supernet_sticks_to_original_when_resources_abound() {
        let (m, _) = run(
            DreamConfig::full(),
            ScenarioKind::ArSocial,
            PlatformPreset::Homo8kWs2,
            1000,
        );
        let ofa = m
            .models()
            .find(|(_, s)| s.model_name == "Once-for-All")
            .map(|(_, s)| s.variant_runs.clone())
            .unwrap();
        let original = ofa[0];
        let lighter: u64 = ofa.iter().skip(1).sum();
        assert!(
            original >= lighter,
            "8K should mostly run the original: {ofa:?}"
        );
    }

    #[test]
    fn dream_beats_ignoring_heterogeneity_on_energy() {
        // With β > 0 the energy score steers layers toward energy-cheap
        // accelerators; β = 0 ignores them. Compare normalised energy.
        let mut eco = DreamConfig::mapscore();
        eco.params = ScoreParams::new(0.5, 1.5).unwrap();
        let mut agnostic = DreamConfig::mapscore();
        agnostic.params = ScoreParams::new(0.5, 0.0).unwrap();
        let (m_eco, _) = {
            let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
            let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
            let mut s = DreamScheduler::new(eco);
            (
                SimulationBuilder::new(platform, scenario)
                    .duration(Millis::new(1000))
                    .seed(5)
                    .run(&mut s)
                    .unwrap()
                    .into_metrics(),
                s,
            )
        };
        let (m_agn, _) = {
            let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
            let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
            let mut s = DreamScheduler::new(agnostic);
            (
                SimulationBuilder::new(platform, scenario)
                    .duration(Millis::new(1000))
                    .seed(5)
                    .run(&mut s)
                    .unwrap()
                    .into_metrics(),
                s,
            )
        };
        assert!(
            m_eco.overall_normalized_energy() < m_agn.overall_normalized_energy() * 1.02,
            "eco {} vs agnostic {}",
            m_eco.overall_normalized_energy(),
            m_agn.overall_normalized_energy()
        );
    }

    #[test]
    fn capabilities_cover_all_table1_columns() {
        let s = DreamScheduler::new(DreamConfig::full());
        let c = s.capabilities();
        assert!(
            c.cascade
                && c.concurrent
                && c.realtime
                && c.task_dynamicity
                && c.model_dynamicity
                && c.energy_aware
                && c.heterogeneity_aware
        );
        assert_eq!(s.name(), "DREAM-Full");
    }

    #[test]
    fn online_adaptation_tunes_on_boot() {
        let mut config = DreamConfig::full().with_online_adaptation();
        config.adaptivity.eval_window = dream_sim::SimTime::from(Millis::new(40));
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(ScenarioKind::ArSocial, CascadeProbability::default_paper());
        let mut sched = DreamScheduler::new(config);
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(1800))
            .seed(2)
            .run(&mut sched)
            .unwrap();
        assert_eq!(sched.adaptivity().episodes(), 1);
        assert!(
            !sched.adaptivity().history().is_empty(),
            "candidates should have been evaluated online"
        );
    }
}
