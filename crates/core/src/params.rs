use std::error::Error;
use std::fmt;

/// Errors from parameter construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// α or β fell outside the paper's constrained search range `[0, 2]`.
    OutOfRange {
        /// Which parameter ("alpha" / "beta").
        which: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::OutOfRange { which, value } => {
                write!(f, "{which} = {value} is outside the search range [0, 2]")
            }
        }
    }
}

impl Error for ParamError {}

/// MapScore's tunable weights: α (starvation) and β (energy).
///
/// The paper constrains both to `[0, 2]` (§5.2, Figure 10) — a
/// "well-conditioned, limited optimization space" that the radius-shrinking
/// search exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreParams {
    alpha: f64,
    beta: f64,
}

impl ScoreParams {
    /// Lower bound of the search range.
    pub const MIN: f64 = 0.0;
    /// Upper bound of the search range.
    pub const MAX: f64 = 2.0;

    /// Creates a parameter pair.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError::OutOfRange`] when a value is outside `[0, 2]`
    /// or not finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ParamError> {
        for (which, v) in [("alpha", alpha), ("beta", beta)] {
            if !v.is_finite() || !(Self::MIN..=Self::MAX).contains(&v) {
                return Err(ParamError::OutOfRange { which, value: v });
            }
        }
        Ok(ScoreParams { alpha, beta })
    }

    /// Creates a pair, clamping each value into `[0, 2]` (NaN becomes the
    /// neutral 1.0). Used by the optimiser when a move lands outside the
    /// box.
    pub fn clamped(alpha: f64, beta: f64) -> Self {
        let fix = |v: f64| {
            if v.is_nan() {
                1.0
            } else {
                v.clamp(Self::MIN, Self::MAX)
            }
        };
        ScoreParams {
            alpha: fix(alpha),
            beta: fix(beta),
        }
    }

    /// The neutral pair α = β = 1 (Figure 9's fixed baseline).
    pub fn neutral() -> Self {
        ScoreParams {
            alpha: 1.0,
            beta: 1.0,
        }
    }

    /// Starvation weight α.
    pub fn alpha(self) -> f64 {
        self.alpha
    }

    /// Energy weight β.
    pub fn beta(self) -> f64 {
        self.beta
    }

    /// Euclidean distance to another pair (optimiser convergence metric).
    pub fn distance(self, other: ScoreParams) -> f64 {
        ((self.alpha - other.alpha).powi(2) + (self.beta - other.beta).powi(2)).sqrt()
    }
}

impl Default for ScoreParams {
    fn default() -> Self {
        Self::neutral()
    }
}

impl fmt::Display for ScoreParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(α={:.3}, β={:.3})", self.alpha, self.beta)
    }
}

/// Configuration of a [`crate::DreamScheduler`], mirroring the paper's
/// Table 4 ablation levels.
#[derive(Debug, Clone, PartialEq)]
pub struct DreamConfig {
    /// Initial (or fixed) MapScore parameters.
    pub params: ScoreParams,
    /// Enable online (α, β) adaptation on workload changes (§4.4). The
    /// offline variant — tuning before a measured run — is driven by
    /// [`crate::ParamOptimizer`] and does not need this flag.
    pub online_adaptation: bool,
    /// Enable the smart frame drop engine (§4.2.1).
    pub smart_drop: bool,
    /// Enable supernet switching (§4.5.1).
    pub supernet_switching: bool,
    /// Frame-drop rate cap: at most `max_drops_per_window` drops over the
    /// last `drop_window` released frames of a model (default 2-in-10, the
    /// paper's 20% cap).
    pub drop_window: usize,
    /// See [`DreamConfig::drop_window`].
    pub max_drops_per_window: usize,
    /// Floor applied to `Slack` so urgency stays finite for overdue tasks
    /// (ns).
    pub slack_floor_ns: f64,
    /// Safety factor on the supernet fit test: a variant "fits" when
    /// `now + safety · ToGo ≤ deadline`.
    pub supernet_safety: f64,
    /// Online adaptation settings.
    pub adaptivity: crate::AdaptivityConfig,
}

impl DreamConfig {
    /// `DREAM-MapScore` (Table 4): score-driven dispatch with parameter
    /// optimisation, no frame drop, no supernet switching.
    pub fn mapscore() -> Self {
        DreamConfig {
            params: ScoreParams::neutral(),
            online_adaptation: false,
            smart_drop: false,
            supernet_switching: false,
            drop_window: 10,
            max_drops_per_window: 2,
            slack_floor_ns: 1_000.0,
            supernet_safety: 1.0,
            adaptivity: crate::AdaptivityConfig::default(),
        }
    }

    /// `DREAM-SmartDrop` (Table 4): MapScore + smart frame drop.
    pub fn smart_drop() -> Self {
        DreamConfig {
            smart_drop: true,
            ..Self::mapscore()
        }
    }

    /// `DREAM-Full` (Table 4): MapScore + smart frame drop + supernet
    /// switching.
    pub fn full() -> Self {
        DreamConfig {
            smart_drop: true,
            supernet_switching: true,
            ..Self::mapscore()
        }
    }

    /// The Figure 9 baseline: fixed α = β = 1, no other optimisation.
    pub fn fixed_neutral() -> Self {
        Self::mapscore()
    }

    /// Sets the initial/fixed parameters.
    pub fn with_params(mut self, params: ScoreParams) -> Self {
        self.params = params;
        self
    }

    /// Enables online adaptation (used by the Figure 10/11 experiments).
    pub fn with_online_adaptation(mut self) -> Self {
        self.online_adaptation = true;
        self
    }

    /// The Table 4 configuration name.
    pub fn variant_name(&self) -> &'static str {
        match (self.smart_drop, self.supernet_switching) {
            (false, false) => "DREAM-MapScore",
            (true, false) => "DREAM-SmartDrop",
            (true, true) => "DREAM-Full",
            (false, true) => "DREAM-MapScore+Supernet",
        }
    }
}

impl Default for DreamConfig {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validate_range() {
        assert!(ScoreParams::new(0.0, 2.0).is_ok());
        assert!(ScoreParams::new(-0.1, 1.0).is_err());
        assert!(ScoreParams::new(1.0, 2.1).is_err());
        assert!(ScoreParams::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn clamping() {
        let p = ScoreParams::clamped(-1.0, 5.0);
        assert_eq!(p.alpha(), 0.0);
        assert_eq!(p.beta(), 2.0);
        let q = ScoreParams::clamped(f64::NAN, 0.5);
        assert_eq!(q.alpha(), 1.0);
    }

    #[test]
    fn neutral_is_one_one() {
        let p = ScoreParams::neutral();
        assert_eq!((p.alpha(), p.beta()), (1.0, 1.0));
        assert_eq!(ScoreParams::default(), p);
    }

    #[test]
    fn distance_metric() {
        let a = ScoreParams::new(0.0, 0.0).unwrap();
        let b = ScoreParams::new(0.3, 0.4).unwrap();
        assert!((a.distance(b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn table4_variant_names() {
        assert_eq!(DreamConfig::mapscore().variant_name(), "DREAM-MapScore");
        assert_eq!(DreamConfig::smart_drop().variant_name(), "DREAM-SmartDrop");
        assert_eq!(DreamConfig::full().variant_name(), "DREAM-Full");
    }

    #[test]
    fn table4_feature_ladder() {
        let ms = DreamConfig::mapscore();
        assert!(!ms.smart_drop && !ms.supernet_switching);
        let sd = DreamConfig::smart_drop();
        assert!(sd.smart_drop && !sd.supernet_switching);
        let full = DreamConfig::full();
        assert!(full.smart_drop && full.supernet_switching);
    }

    #[test]
    fn display_formats() {
        let p = ScoreParams::new(0.5, 1.25).unwrap();
        let s = p.to_string();
        assert!(s.contains("0.500") && s.contains("1.250"));
        assert!(ParamError::OutOfRange {
            which: "alpha",
            value: 3.0
        }
        .to_string()
        .contains("alpha"));
    }
}
