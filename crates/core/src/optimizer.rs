use dream_sim::Metrics;

use crate::uxcost::UxCostReport;
use crate::ScoreParams;

/// What the parameter search minimises (the Figure 13 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectiveKind {
    /// The paper's UXCost (Algorithm 2): ΣDLV · ΣNormEnergy.
    UxCost,
    /// Deadline-violation sum only.
    DeadlineOnly,
    /// Normalised-energy sum only.
    EnergyOnly,
}

impl ObjectiveKind {
    /// Evaluates the objective on simulation metrics (lower is better).
    pub fn evaluate(self, metrics: &Metrics) -> f64 {
        let report = UxCostReport::from_metrics(metrics);
        match self {
            ObjectiveKind::UxCost => report.uxcost(),
            ObjectiveKind::DeadlineOnly => report.overall_rate_dlv(),
            ObjectiveKind::EnergyOnly => report.overall_norm_energy(),
        }
    }

    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveKind::UxCost => "UXCost",
            ObjectiveKind::DeadlineOnly => "DLV-only",
            ObjectiveKind::EnergyOnly => "Energy-only",
        }
    }
}

impl std::fmt::Display for ObjectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of the radius-shrinking search: the candidates evaluated and
/// where the search moved.
#[derive(Debug, Clone)]
pub struct OptimizerStep {
    /// Step index (0-based).
    pub index: usize,
    /// Search center entering the step.
    pub center: ScoreParams,
    /// Sampling radius of the step.
    pub radius: f64,
    /// Every (candidate, cost) evaluated this step.
    pub evaluations: Vec<(ScoreParams, f64)>,
    /// The best candidate of the step.
    pub best: (ScoreParams, f64),
}

/// The full search record — Figure 10's trajectory and Figure 11's
/// convergence curve come straight from this.
#[derive(Debug, Clone)]
pub struct OptimizationTrace {
    /// The steps in order.
    pub steps: Vec<OptimizerStep>,
    /// The final parameters.
    pub final_params: ScoreParams,
    /// The objective at the final parameters.
    pub final_cost: f64,
}

impl OptimizationTrace {
    /// Objective value of the best candidate after each step (cumulative
    /// minimum), for convergence plots.
    pub fn best_cost_per_step(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.steps
            .iter()
            .map(|s| {
                best = best.min(s.best.1);
                best
            })
            .collect()
    }

    /// Total number of objective evaluations.
    pub fn evaluations(&self) -> usize {
        self.steps.iter().map(|s| s.evaluations.len()).sum()
    }
}

/// The §3.6 parameter optimiser: at each step it samples a ring of
/// neighbouring points around the current center plus a few distant probes,
/// evaluates the objective, moves to the cost-weighted interpolation of the
/// two best points, and halves the radius — stopping once the radius falls
/// below the threshold. The search space is the paper's `[0, 2]²` box.
#[derive(Debug, Clone)]
pub struct ParamOptimizer {
    center: ScoreParams,
    radius: f64,
    threshold: f64,
    ring_points: usize,
    distant_points: usize,
    shrink: f64,
    step_index: usize,
    best_seen: Option<(ScoreParams, f64)>,
}

/// Fixed distant probes cycled across steps (corners first — the points a
/// local ring can never reach quickly).
const DISTANT_PROBES: [(f64, f64); 5] = [
    (0.15, 0.15),
    (1.85, 1.85),
    (0.15, 1.85),
    (1.85, 0.15),
    (1.0, 1.0),
];

impl ParamOptimizer {
    /// Creates an optimiser centred at `initial` with the calibrated
    /// defaults (radius 0.6 halving to below 0.05 ⇒ 4–5 steps, the paper's
    /// "within five steps" envelope).
    pub fn new(initial: ScoreParams) -> Self {
        ParamOptimizer {
            center: initial,
            radius: 0.6,
            threshold: 0.05,
            ring_points: 6,
            distant_points: 2,
            shrink: 0.5,
            step_index: 0,
            best_seen: None,
        }
    }

    /// Overrides the initial sampling radius.
    pub fn with_radius(mut self, radius: f64) -> Self {
        self.radius = radius.max(1e-6);
        self
    }

    /// Overrides the convergence threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold.max(1e-9);
        self
    }

    /// Overrides the ring/distant sample counts.
    pub fn with_samples(mut self, ring: usize, distant: usize) -> Self {
        self.ring_points = ring.max(2);
        self.distant_points = distant.min(DISTANT_PROBES.len());
        self
    }

    /// Current search center.
    pub fn center(&self) -> ScoreParams {
        self.center
    }

    /// Current radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Whether the search has converged (radius below threshold).
    pub fn converged(&self) -> bool {
        self.radius < self.threshold
    }

    /// Best (params, cost) observed so far.
    pub fn best_seen(&self) -> Option<(ScoreParams, f64)> {
        self.best_seen
    }

    /// The candidates to evaluate this step: the center, `ring_points`
    /// points on the circle of the current radius (rotated a little each
    /// step so successive rings do not align), and `distant_points` fixed
    /// probes.
    pub fn candidates(&self) -> Vec<ScoreParams> {
        let mut out = vec![self.center];
        let n = self.ring_points;
        let rot = self.step_index as f64 * 0.5;
        for k in 0..n {
            let angle = rot + 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            out.push(ScoreParams::clamped(
                self.center.alpha() + self.radius * angle.cos(),
                self.center.beta() + self.radius * angle.sin(),
            ));
        }
        for d in 0..self.distant_points {
            let (a, b) = DISTANT_PROBES[(self.step_index + d) % DISTANT_PROBES.len()];
            out.push(ScoreParams::clamped(a, b));
        }
        out.dedup_by(|a, b| a.distance(*b) < 1e-12);
        out
    }

    /// Feeds back the evaluated costs of this step's candidates: moves the
    /// center to the cost-weighted interpolation of the two best points and
    /// shrinks the radius. Returns the step record.
    ///
    /// # Panics
    ///
    /// Panics if `evaluations` is empty.
    pub fn observe(&mut self, evaluations: Vec<(ScoreParams, f64)>) -> OptimizerStep {
        assert!(
            !evaluations.is_empty(),
            "observe needs at least one evaluation"
        );
        let mut sorted = evaluations.clone();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let (b1, c1) = sorted[0];
        let step = OptimizerStep {
            index: self.step_index,
            center: self.center,
            radius: self.radius,
            evaluations,
            best: (b1, c1),
        };
        let new_center = if sorted.len() >= 2 {
            let (b2, c2) = sorted[1];
            // Weighted interpolation: the lower-cost point pulls harder;
            // equal costs give the midpoint.
            let denom = c1 + c2;
            let w2 = if denom > 0.0 && denom.is_finite() {
                c1 / denom
            } else {
                0.5
            };
            ScoreParams::clamped(
                b1.alpha() + (b2.alpha() - b1.alpha()) * w2,
                b1.beta() + (b2.beta() - b1.beta()) * w2,
            )
        } else {
            b1
        };
        self.center = new_center;
        self.radius *= self.shrink;
        self.step_index += 1;
        if self.best_seen.map(|(_, c)| c1 < c).unwrap_or(true) {
            self.best_seen = Some((b1, c1));
        }
        step
    }

    /// Runs the search to convergence against an objective function
    /// (offline mode: each call typically runs a full simulation).
    pub fn run<F: FnMut(ScoreParams) -> f64>(self, mut objective: F) -> OptimizationTrace {
        self.run_batched(|candidates| candidates.iter().map(|&p| objective(p)).collect())
    }

    /// Runs the search to convergence with each step's candidate set
    /// evaluated as one batch. The candidates within a step are
    /// independent, so `evaluate` may fan them out across a thread pool
    /// (the `dream-bench` tuner does exactly that); only steps are
    /// sequential, because each step's ring depends on the previous
    /// step's best points.
    ///
    /// # Panics
    ///
    /// Panics if `evaluate` returns a different number of costs than it
    /// was given candidates.
    pub fn run_batched<F: FnMut(&[ScoreParams]) -> Vec<f64>>(
        mut self,
        mut evaluate: F,
    ) -> OptimizationTrace {
        let mut steps = Vec::new();
        while !self.converged() {
            let candidates = self.candidates();
            let costs = evaluate(&candidates);
            assert_eq!(
                costs.len(),
                candidates.len(),
                "batch evaluator must return one cost per candidate"
            );
            steps.push(self.observe(candidates.into_iter().zip(costs).collect()));
        }
        let (final_params, final_cost) = self
            .best_seen
            .expect("at least one step ran before convergence");
        OptimizationTrace {
            steps,
            final_params,
            final_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth bowl with minimum at (0.4, 1.5).
    fn bowl(p: ScoreParams) -> f64 {
        (p.alpha() - 0.4).powi(2) + (p.beta() - 1.5).powi(2) + 0.01
    }

    #[test]
    fn converges_near_bowl_minimum() {
        let trace = ParamOptimizer::new(ScoreParams::neutral()).run(bowl);
        let p = trace.final_params;
        assert!(
            p.distance(ScoreParams::new(0.4, 1.5).unwrap()) < 0.25,
            "landed at {p}"
        );
        // The paper's envelope: converged in ≤ 5 steps with this radius
        // schedule.
        assert!(trace.steps.len() <= 5, "{} steps", trace.steps.len());
    }

    #[test]
    fn best_cost_per_step_is_monotone() {
        let trace = ParamOptimizer::new(ScoreParams::clamped(1.9, 0.1)).run(bowl);
        let costs = trace.best_cost_per_step();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(trace.evaluations() > 0);
    }

    #[test]
    fn candidates_stay_in_box_and_include_center() {
        let opt = ParamOptimizer::new(ScoreParams::clamped(0.05, 1.95)).with_radius(0.8);
        let cands = opt.candidates();
        assert_eq!(cands[0], opt.center());
        for c in &cands {
            assert!((0.0..=2.0).contains(&c.alpha()));
            assert!((0.0..=2.0).contains(&c.beta()));
        }
        // Ring + distant + center (minus dedup).
        assert!(cands.len() >= 7);
    }

    #[test]
    fn distant_probes_escape_local_minima() {
        // Two-well function: local well at (1.8, 1.8) (shallow), global at
        // (0.15, 0.15) (deep). Starting in the shallow well, the distant
        // corner probe finds the deep one.
        let two_wells = |p: ScoreParams| {
            let d1 = (p.alpha() - 1.8).powi(2) + (p.beta() - 1.8).powi(2);
            let d2 = (p.alpha() - 0.15).powi(2) + (p.beta() - 0.15).powi(2);
            (0.5 + d1).min(0.1 + d2)
        };
        let trace = ParamOptimizer::new(ScoreParams::clamped(1.8, 1.8))
            .with_samples(6, 2)
            .run(two_wells);
        assert!(
            trace.final_cost < 0.5,
            "stuck in the shallow well: {}",
            trace.final_cost
        );
    }

    #[test]
    fn equal_costs_move_to_midpoint() {
        let mut opt = ParamOptimizer::new(ScoreParams::neutral());
        let a = ScoreParams::new(0.5, 1.0).unwrap();
        let b = ScoreParams::new(1.5, 1.0).unwrap();
        opt.observe(vec![(a, 1.0), (b, 1.0), (ScoreParams::neutral(), 9.0)]);
        assert!(opt.center().distance(ScoreParams::new(1.0, 1.0).unwrap()) < 1e-9);
    }

    #[test]
    fn radius_halves_each_step() {
        let mut opt = ParamOptimizer::new(ScoreParams::neutral()).with_radius(0.8);
        let r0 = opt.radius();
        opt.observe(vec![(ScoreParams::neutral(), 1.0)]);
        assert!((opt.radius() - r0 * 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one evaluation")]
    fn observe_rejects_empty() {
        ParamOptimizer::new(ScoreParams::neutral()).observe(vec![]);
    }

    #[test]
    fn objective_kind_names() {
        assert_eq!(ObjectiveKind::UxCost.to_string(), "UXCost");
        assert_eq!(ObjectiveKind::DeadlineOnly.name(), "DLV-only");
        assert_eq!(ObjectiveKind::EnergyOnly.name(), "Energy-only");
    }
}
