use dream_cost::{CostBackend, Platform};
use dream_sim::{AccState, SimTime, Task, WorkloadSet};

use crate::ScoreParams;

/// The four unit scores plus the context-switch term behind one MapScore
/// value (Algorithm 1 lines 7–13), exposed for inspection and tests
/// (C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBreakdown {
    /// `ToGo / Slack` (line 7).
    pub urgency: f64,
    /// `Σᵢ lat(next, i) / lat(next, acc)` (line 8).
    pub lat_pref: f64,
    /// `Tqueue / mean-latency(next)` (line 9).
    pub starvation: f64,
    /// `Σᵢ E(next, i) / E(next, acc)` (line 11).
    pub pref_energy: f64,
    /// `CswitchEnergy / EstEnergy(next, acc)` (line 10).
    pub cost_switch: f64,
    /// `pref_energy − cost_switch` (lines 12–13).
    pub energy: f64,
}

/// A computed MapScore for one (task, accelerator) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapScore {
    /// The combined score (line 14–15):
    /// `urgency·lat_pref + α·starvation + β·energy`.
    pub value: f64,
    /// The unit scores it was combined from.
    pub breakdown: ScoreBreakdown,
}

/// The per-task half of Algorithm 1's static/dynamic split: the two unit
/// scores that depend on the task's live state (queue contents, waiting
/// time) but **not** on the accelerator. A scheduler computes them once
/// per task per decision and combines them with the per-(layer, acc)
/// tables [`WorkloadSet`] precomputed offline — turning each MapScore
/// cell into a handful of multiply-adds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTerms {
    /// `ScoreUrgency(tsk)` (line 7) — see [`ScoreContext::urgency`].
    pub urgency: f64,
    /// `ScoreStarv(tsk)` (line 9) — see [`ScoreContext::starvation`].
    pub starvation: f64,
}

/// Everything Algorithm 1 needs besides the task and accelerator:
/// the offline cost tables, the cost model (for switch costs), and the
/// current time.
#[derive(Debug, Clone, Copy)]
pub struct ScoreContext<'a> {
    /// Current time (`Tcurr`).
    pub now: SimTime,
    /// Offline latency/energy tables (`EstLatency`, `EstEnergy`) plus the
    /// precomputed static score tables (`lat_pref`, `pref_energy`,
    /// cold-switch ratios).
    pub workload: &'a WorkloadSet,
    /// The cost backend — only consulted by the from-scratch
    /// [`ScoreContext::map_score_reference`] path; the hot path reads the
    /// tables.
    pub cost: &'a dyn CostBackend,
    /// The platform (accelerator configs for reference switch costs).
    pub platform: &'a Platform,
    /// Floor applied to `Slack` so urgency stays finite past the deadline.
    pub slack_floor_ns: f64,
}

impl<'a> ScoreContext<'a> {
    /// Builds a context from a simulator view.
    pub fn from_view(view: &dream_sim::SystemView<'a>, slack_floor_ns: f64) -> Self {
        ScoreContext {
            now: view.now(),
            workload: view.workload(),
            cost: view.cost(),
            platform: view.platform(),
            slack_floor_ns,
        }
    }

    /// `ScoreUrgency(tsk) = ToGo(tsk) / Slack(tsk)` (line 7), with `Slack`
    /// floored at [`ScoreContext::slack_floor_ns`] so overdue tasks get a
    /// large-but-finite urgency.
    pub fn urgency(&self, task: &Task) -> f64 {
        let to_go = task.to_go_avg_ns(self.workload);
        let slack = task.slack_ns(self.now).max(self.slack_floor_ns);
        to_go / slack
    }

    /// `ScoreLatPref(tsk, acc)` (line 8): the inverse of this accelerator's
    /// share of the summed latency of the task's next layer. Higher is
    /// better; 1.0 means "as good as the sum of everyone" (impossible),
    /// `N` means uniform. Served from the table
    /// [`WorkloadSet::build`] precomputed.
    ///
    /// Returns 0 for tasks with an empty queue (cannot happen for live
    /// tasks).
    pub fn latency_preference(&self, task: &Task, acc: dream_cost::AcceleratorId) -> f64 {
        let Some(next) = task.next_layer() else {
            return 0.0;
        };
        self.workload.lat_pref(next.layer, acc)
    }

    /// `ScoreStarv(tsk) = Tqueue / mean-latency(next)` (line 9): how many
    /// "fair service quanta" the task has waited.
    pub fn starvation(&self, task: &Task) -> f64 {
        let Some(next) = task.next_layer() else {
            return 0.0;
        };
        let t_queue = self.now.saturating_sub(task.last_completion()).as_ns_f64();
        t_queue / self.workload.avg_latency_ns(next.layer)
    }

    /// `PrefEnergy` and `Cost_switch` (lines 10–11), served from the
    /// precomputed tables. The switch term is zero when the accelerator
    /// last ran this very task; for a cold accelerator (nothing to flush)
    /// it is the precomputed cold ratio; otherwise the only online input
    /// is the departing task's flush volume.
    pub fn energy_terms(&self, task: &Task, acc: &AccState) -> (f64, f64) {
        let Some(next) = task.next_layer() else {
            return (0.0, 0.0);
        };
        let ws = self.workload;
        let pref = ws.pref_energy(next.layer, acc.id());
        let cost_switch = if acc.last_task() == Some(task.id()) {
            0.0
        } else if acc.last_output_bytes() == 0 {
            ws.cold_switch_ratio(next.layer, acc.id())
        } else {
            // Identical operation sequence to CostModel::switch_cost
            // followed by the ratio — see map_score_reference.
            let bytes = (ws.input_bytes(next.layer) + acc.last_output_bytes()) as f64;
            bytes * ws.switch_energy_pj_per_byte(acc.id()) / ws.energy_pj(next.layer, acc.id())
        };
        (pref, cost_switch)
    }

    /// `PrefEnergy` and `Cost_switch` recomputed from scratch through
    /// [`CostBackend::switch_cost`] — the pre-optimization arithmetic,
    /// kept as the reference the cached tables are property-tested
    /// against (bit-for-bit).
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot cost a switch on one of the
    /// platform's accelerators — impossible for any backend the workload
    /// was successfully built from, since the build resolves switch
    /// factors for every accelerator up front.
    pub fn energy_terms_reference(&self, task: &Task, acc: &AccState) -> (f64, f64) {
        let Some(next) = task.next_layer() else {
            return (0.0, 0.0);
        };
        let e_here = self.workload.energy_pj(next.layer, acc.id());
        let pref = self.workload.sum_energy_pj(next.layer) / e_here;
        let cost_switch = if acc.last_task() == Some(task.id()) {
            0.0
        } else {
            let config = self
                .platform
                .accelerator(acc.id())
                .expect("accelerator ids come from the platform");
            let sw = self
                .cost
                .switch_cost(
                    self.workload.input_bytes(next.layer),
                    acc.last_output_bytes(),
                    config,
                )
                .expect("the workload build already resolved switch factors for this accelerator");
            sw.energy_pj / e_here
        };
        (pref, cost_switch)
    }

    /// The accelerator-independent unit scores of `task`, computed once
    /// per task per decision (they walk the task's remaining-layer queue)
    /// and reused across every accelerator column by
    /// [`map_score_with`](Self::map_score_with).
    pub fn task_terms(&self, task: &Task) -> TaskTerms {
        TaskTerms {
            urgency: self.urgency(task),
            starvation: self.starvation(task),
        }
    }

    /// MapScore(tsk, acc) with the per-task terms already in hand — the
    /// allocation-free hot path: two table loads, at most one switch
    /// ratio, and three multiply-adds.
    pub fn map_score_with(
        &self,
        terms: TaskTerms,
        task: &Task,
        acc: &AccState,
        params: ScoreParams,
    ) -> MapScore {
        let lat_pref = self.latency_preference(task, acc.id());
        let (pref_energy, cost_switch) = self.energy_terms(task, acc);
        let energy = pref_energy - cost_switch;
        MapScore {
            value: terms.urgency * lat_pref
                + params.alpha() * terms.starvation
                + params.beta() * energy,
            breakdown: ScoreBreakdown {
                urgency: terms.urgency,
                lat_pref,
                starvation: terms.starvation,
                pref_energy,
                cost_switch,
                energy,
            },
        }
    }

    /// The full Algorithm 1: MapScore(tsk, acc) with weights `params`.
    pub fn map_score(&self, task: &Task, acc: &AccState, params: ScoreParams) -> MapScore {
        self.map_score_with(self.task_terms(task), task, acc, params)
    }

    /// [`map_score`](Self::map_score) recomputed entirely from scratch —
    /// every term walked through the raw tables and [`CostBackend`] with
    /// the pre-optimization operation sequence. The property tests assert
    /// this is bit-for-bit equal to the cached path across random
    /// layers, accelerators, and parameters.
    pub fn map_score_reference(
        &self,
        task: &Task,
        acc: &AccState,
        params: ScoreParams,
    ) -> MapScore {
        let urgency = self.urgency(task);
        let lat_pref = match task.next_layer() {
            Some(next) => {
                self.workload.sum_latency_ns(next.layer)
                    / self.workload.latency_ns(next.layer, acc.id())
            }
            None => 0.0,
        };
        let starvation = self.starvation(task);
        let (pref_energy, cost_switch) = self.energy_terms_reference(task, acc);
        let energy = pref_energy - cost_switch;
        MapScore {
            value: urgency * lat_pref + params.alpha() * starvation + params.beta() * energy,
            breakdown: ScoreBreakdown {
                urgency,
                lat_pref,
                starvation,
                pref_energy,
                cost_switch,
                energy,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::PlatformPreset;
    use dream_models::{CascadeProbability, Scenario, ScenarioKind};
    use dream_sim::{Assignment, Decision, Millis, Scheduler, SimulationBuilder, SystemView};

    /// Captures a view mid-simulation so unit scores can be probed against
    /// live tasks.
    struct Probe {
        checked: bool,
    }

    impl Scheduler for Probe {
        fn name(&self) -> &str {
            "probe"
        }

        fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
            if !self.checked && view.task_count() >= 2 {
                self.checked = true;
                let ctx = ScoreContext::from_view(view, 1_000.0);
                let params = ScoreParams::neutral();
                for task in view.ready_tasks() {
                    // Urgency positive, finite.
                    let u = ctx.urgency(task);
                    assert!(u.is_finite() && u >= 0.0, "urgency {u}");
                    // Preference: sum over accs of 1/latpref-share = 1, so
                    // each latpref ≥ 1 and their reciprocals sum to 1.
                    let mut recip = 0.0;
                    for acc in view.accs() {
                        let lp = ctx.latency_preference(task, acc.id());
                        assert!(lp >= 1.0, "lat_pref {lp} < 1");
                        recip += 1.0 / lp;
                        let ms = ctx.map_score(task, acc, params);
                        assert!(ms.value.is_finite());
                        assert_eq!(
                            ms.breakdown.energy,
                            ms.breakdown.pref_energy - ms.breakdown.cost_switch
                        );
                    }
                    assert!((recip - 1.0).abs() < 1e-9, "recip sum {recip}");
                    // Starvation at release time is 0 and grows with time.
                    assert!(ctx.starvation(task) >= 0.0);
                }
            }
            // Greedy assignment to keep the simulation moving.
            let mut d = Decision::none();
            let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
            for t in view.ready_tasks() {
                let Some(acc) = idle.pop() else { break };
                d.assignments.push(Assignment::single(t.id(), acc));
            }
            d
        }
    }

    #[test]
    fn unit_scores_hold_invariants_on_live_tasks() {
        let platform = dream_cost::Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(ScenarioKind::VrGaming, CascadeProbability::default_paper());
        let mut probe = Probe { checked: false };
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(200))
            .seed(3)
            .run(&mut probe)
            .unwrap();
        assert!(probe.checked, "the probe never saw two concurrent tasks");
    }

    /// A scheduler that records score structure for a heavy + light task
    /// pair to verify the starvation score favours waiting light layers.
    struct StarvationProbe {
        saw_growth: bool,
        last: f64,
    }

    impl Scheduler for StarvationProbe {
        fn name(&self) -> &str {
            "starv-probe"
        }

        fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
            let ctx = ScoreContext::from_view(view, 1_000.0);
            // Never schedule the KWS task; watch its starvation grow.
            let mut d = Decision::none();
            let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
            for t in view.ready_tasks() {
                let name = view.workload().node(t.key()).model_name();
                if name == "KWS_res8" {
                    let s = ctx.starvation(t);
                    if s > self.last && self.last > 0.0 {
                        self.saw_growth = true;
                    }
                    self.last = s;
                    continue;
                }
                let Some(acc) = idle.pop() else { break };
                d.assignments.push(Assignment::single(t.id(), acc));
            }
            d
        }
    }

    #[test]
    fn starvation_grows_while_a_task_waits() {
        let platform = dream_cost::Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut probe = StarvationProbe {
            saw_growth: false,
            last: 0.0,
        };
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(300))
            .seed(1)
            .run(&mut probe)
            .unwrap();
        assert!(probe.saw_growth);
    }

    /// Urgency must explode (but stay finite) when a task passes its
    /// deadline.
    struct OverdueProbe {
        seen_overdue: bool,
    }

    impl Scheduler for OverdueProbe {
        fn name(&self) -> &str {
            "overdue-probe"
        }

        fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
            let ctx = ScoreContext::from_view(view, 1_000.0);
            for t in view.ready_tasks() {
                if t.slack_ns(view.now()) < 0.0 {
                    let u = ctx.urgency(t);
                    assert!(u.is_finite() && u > 100.0, "overdue urgency {u}");
                    self.seen_overdue = true;
                }
            }
            // Deliberately idle: let deadlines pass.
            Decision::none()
        }
    }

    #[test]
    fn overdue_tasks_get_large_finite_urgency() {
        let platform = dream_cost::Platform::preset(PlatformPreset::Homo4kWs2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut probe = OverdueProbe {
            seen_overdue: false,
        };
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(200))
            .seed(1)
            .run(&mut probe)
            .unwrap();
        assert!(probe.seen_overdue);
    }

    #[test]
    fn energy_terms_penalize_context_switch() {
        // Construct two identical accelerators; run one layer of task A on
        // acc0; task B then pays a switch on acc0 but not on acc... (acc1
        // is also cold — last_output_bytes 0 — so the switch term is the
        // incoming fetch only). We verify cost_switch > 0 for a cold start
        // with non-zero input bytes, and that MapScore decreases in it.
        struct SwitchProbe {
            done: bool,
        }
        impl Scheduler for SwitchProbe {
            fn name(&self) -> &str {
                "switch-probe"
            }
            fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
                if !self.done {
                    if let Some(task) = view.ready_tasks().next() {
                        let ctx = ScoreContext::from_view(view, 1_000.0);
                        let acc = &view.accs()[0];
                        let (pref, sw) = ctx.energy_terms(task, acc);
                        assert!(pref > 0.0);
                        assert!(sw > 0.0, "cold fetch should cost energy");
                        let with = ctx.map_score(task, acc, ScoreParams::neutral());
                        assert!(with.breakdown.energy < pref);
                        self.done = true;
                    }
                }
                Decision::none()
            }
        }
        let platform = dream_cost::Platform::preset(PlatformPreset::Homo4kWs2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut probe = SwitchProbe { done: false };
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(80))
            .run(&mut probe)
            .unwrap();
        assert!(probe.done);
    }

    #[test]
    fn alpha_beta_scale_their_terms() {
        struct WeightProbe {
            done: bool,
        }
        impl Scheduler for WeightProbe {
            fn name(&self) -> &str {
                "weight-probe"
            }
            fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
                if !self.done {
                    if let Some(task) = view.ready_tasks().next() {
                        let ctx = ScoreContext::from_view(view, 1_000.0);
                        let acc = &view.accs()[0];
                        let zero = ctx
                            .map_score(task, acc, ScoreParams::new(0.0, 0.0).unwrap())
                            .value;
                        let b2 = ctx
                            .map_score(task, acc, ScoreParams::new(0.0, 2.0).unwrap())
                            .value;
                        let bd = ctx.map_score(task, acc, ScoreParams::neutral()).breakdown;
                        assert!((zero - bd.urgency * bd.lat_pref).abs() < 1e-9);
                        assert!((b2 - zero - 2.0 * bd.energy).abs() < 1e-9);
                        self.done = true;
                    }
                }
                Decision::none()
            }
        }
        let platform = dream_cost::Platform::preset(PlatformPreset::Homo4kWs2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut probe = WeightProbe { done: false };
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(80))
            .run(&mut probe)
            .unwrap();
        assert!(probe.done);
    }
}
