//! Property tests for the static/dynamic MapScore split: the cached-table
//! hot path must be **bit-for-bit** equal to a from-scratch recomputation
//! through [`CostModel`](dream_cost::CostModel), across random layers,
//! accelerators, score parameters, and live system states (cold and warm
//! accelerators, overdue tasks, partially resolved gates).

use dream_core::{ScoreContext, ScoreParams};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_sim::{Assignment, Decision, Millis, Scheduler, SimulationBuilder, SystemView};
use proptest::prelude::*;

/// Drives a simulation while comparing, at every decision, the cached
/// MapScore of every (ready task, accelerator) pair against the reference
/// recomputation. Greedy dispatch keeps accelerators cycling through
/// cold/warm/last-task states so the switch-ratio branches all execute.
struct CompareProbe {
    params: ScoreParams,
    slack_floor_ns: f64,
    comparisons: u64,
}

impl Scheduler for CompareProbe {
    fn name(&self) -> &str {
        "compare-probe"
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let ctx = ScoreContext::from_view(view, self.slack_floor_ns);
        for task in view.ready_tasks() {
            let terms = ctx.task_terms(task);
            for acc in view.accs() {
                let cached = ctx.map_score_with(terms, task, acc, self.params);
                let reference = ctx.map_score_reference(task, acc, self.params);
                assert_eq!(
                    cached.value.to_bits(),
                    reference.value.to_bits(),
                    "MapScore diverged for {} on {:?}",
                    task.id(),
                    acc.id()
                );
                for (label, a, b) in [
                    (
                        "urgency",
                        cached.breakdown.urgency,
                        reference.breakdown.urgency,
                    ),
                    (
                        "lat_pref",
                        cached.breakdown.lat_pref,
                        reference.breakdown.lat_pref,
                    ),
                    (
                        "starvation",
                        cached.breakdown.starvation,
                        reference.breakdown.starvation,
                    ),
                    (
                        "pref_energy",
                        cached.breakdown.pref_energy,
                        reference.breakdown.pref_energy,
                    ),
                    (
                        "cost_switch",
                        cached.breakdown.cost_switch,
                        reference.breakdown.cost_switch,
                    ),
                    (
                        "energy",
                        cached.breakdown.energy,
                        reference.breakdown.energy,
                    ),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits(), "{label} diverged");
                }
                self.comparisons += 1;
            }
        }
        // Greedy dispatch to advance the simulation (and to warm the
        // accelerators' last-task state).
        let mut d = Decision::none();
        let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
        for t in view.ready_tasks() {
            let Some(acc) = idle.pop() else { break };
            d.assignments.push(Assignment::single(t.id(), acc));
        }
        d
    }
}

fn scenario_for(ix: usize) -> ScenarioKind {
    let all = ScenarioKind::all();
    all[ix % all.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole guardrail: cached tables are a pure refactor of the
    /// arithmetic — every unit score and the combined value agree with
    /// the from-scratch CostModel path bit-for-bit.
    #[test]
    fn cached_map_score_is_bit_identical_to_reference(
        seed in 0u64..1_000,
        scenario_ix in 0usize..5,
        alpha in 0.0f64..2.0,
        beta in 0.0f64..2.0,
        hetero in any::<bool>(),
        ms in 120u64..400,
    ) {
        let preset = if hetero {
            PlatformPreset::Hetero4kWs1Os2
        } else {
            PlatformPreset::Homo4kWs2
        };
        let platform = Platform::preset(preset);
        let scenario = Scenario::new(scenario_for(scenario_ix), CascadeProbability::default_paper());
        let mut probe = CompareProbe {
            params: ScoreParams::new(alpha, beta).expect("sampled inside the box"),
            slack_floor_ns: 1_000.0,
            comparisons: 0,
        };
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(ms))
            .seed(seed)
            .run(&mut probe)
            .unwrap();
        prop_assert!(probe.comparisons > 0, "the probe never scored a pair");
    }
}
