//! Property-based tests on DREAM's parameter space, optimiser, and frame
//! drop accounting.

use dream_core::{FrameDropEngine, ParamOptimizer, ScoreParams};
use dream_models::{NodeId, PipelineId};
use dream_sim::ModelKey;
use proptest::prelude::*;

fn key(n: usize) -> ModelKey {
    ModelKey {
        phase: 0,
        pipeline: PipelineId(0),
        node: NodeId(n),
    }
}

proptest! {
    /// Clamping always lands inside the paper's [0, 2]² box.
    #[test]
    fn clamped_params_in_box(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let p = ScoreParams::clamped(a, b);
        prop_assert!((0.0..=2.0).contains(&p.alpha()));
        prop_assert!((0.0..=2.0).contains(&p.beta()));
    }

    /// Candidate rings always stay in the box and contain the center.
    #[test]
    fn candidates_in_box(
        a in 0.0f64..2.0,
        b in 0.0f64..2.0,
        radius in 0.01f64..1.5,
    ) {
        let opt = ParamOptimizer::new(ScoreParams::clamped(a, b)).with_radius(radius);
        let cands = opt.candidates();
        prop_assert!(!cands.is_empty());
        prop_assert_eq!(cands[0], opt.center());
        for c in cands {
            prop_assert!((0.0..=2.0).contains(&c.alpha()));
            prop_assert!((0.0..=2.0).contains(&c.beta()));
        }
    }

    /// On any quadratic bowl inside the box the optimiser lands near the
    /// minimum (within the radius schedule's resolution).
    #[test]
    fn optimizer_finds_quadratic_minima(
        ax in 0.2f64..1.8,
        bx in 0.2f64..1.8,
        start_a in 0.0f64..2.0,
        start_b in 0.0f64..2.0,
    ) {
        let start = ScoreParams::clamped(start_a, start_b);
        let objective = |p: ScoreParams| (p.alpha() - ax).powi(2) + (p.beta() - bx).powi(2);
        let trace = ParamOptimizer::new(start).run(objective);
        let target = ScoreParams::clamped(ax, bx);
        // The default radius schedule (0.6 halving to <0.05) can travel at
        // most ~1.2 from the start, so the guarantee is: get close when the
        // minimum is reachable, and never end farther than you began.
        let reachable = start.distance(target) <= 0.9;
        if reachable {
            prop_assert!(
                trace.final_params.distance(target) < 0.55,
                "start {start} target {target} got {}",
                trace.final_params
            );
        }
        prop_assert!(
            trace.final_cost <= objective(start) + 1e-12,
            "search ended worse than it started"
        );
        // Convergence envelope: the default schedule is ≤ 5 steps.
        prop_assert!(trace.steps.len() <= 5);
        // Best-so-far curve is monotone non-increasing.
        let curve = trace.best_cost_per_step();
        for w in curve.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }
    }

    /// The drop budget never exceeds `max_drops` within any window of
    /// `window` releases, for arbitrary release/drop interleavings.
    #[test]
    fn drop_budget_is_never_exceeded(
        ops in proptest::collection::vec(any::<bool>(), 1..200),
        window in 2usize..20,
        max_drops in 1usize..5,
    ) {
        let mut engine = FrameDropEngine::new(window, max_drops, 1_000.0);
        let k = key(0);
        // Track (release_index, dropped) history to verify the cap.
        let mut releases = 0u64;
        let mut drop_points: Vec<u64> = Vec::new();
        for op in ops {
            if op {
                engine.on_released(k);
                releases += 1;
            } else if engine.budget_available(k) {
                engine.record_drop(k);
                drop_points.push(releases);
            }
            // Invariant: drops recorded within the last `window` releases
            // never exceed max_drops.
            let recent = drop_points
                .iter()
                .filter(|&&at| releases - at < window as u64)
                .count();
            prop_assert!(recent <= max_drops, "{recent} drops in window");
        }
    }
}
