//! Distributed soak: a 4-worker in-process cluster runs a real
//! experiment grid over wire protocol v1 and must merge to the exact
//! single-process fingerprint, then absorb a live fan-out of framed
//! submissions before draining cleanly.
//!
//! This is the soak-scale companion of
//! `tests/cluster_equivalence.rs`: a bigger grid, wall-clock
//! throughput reporting, and the live-ingress path exercised on top of
//! the cell fabric.

// Benchmarks measure wall time by definition; exempt from the
// workspace determinism lint on wall-clock reads.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use dream_bench::{DreamVariant, ExperimentGrid, RunSpec, SchedulerKind};
use dream_coordinator::{spawn_local_worker, Coordinator};
use dream_cost::PlatformPreset;
use dream_models::{NodeId, PipelineId, ScenarioKind};

const N_WORKERS: usize = 4;
const LIVE_SUBMISSIONS: usize = 256;

fn main() {
    let workers: Vec<_> = (0..N_WORKERS)
        .map(|i| spawn_local_worker(100 + i as u64).expect("worker spawns"))
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
    let coordinator = Coordinator::connect(addrs).expect("cluster reachable");

    // A grid wide enough that every worker gets several cells: 2
    // schedulers × 2 scenarios × 4 seeds = 16 cells, round-robined 4
    // per worker.
    let mut grid = ExperimentGrid::new();
    for scenario in [ScenarioKind::ArCall, ScenarioKind::VrGaming] {
        for scheduler in [
            SchedulerKind::Fcfs,
            SchedulerKind::DreamFixed(DreamVariant::Full, Default::default()),
        ] {
            grid.add_seed_sweep(
                RunSpec::new(scheduler, scenario, PlatformPreset::Homo4kWs2).with_duration_ms(300),
                4,
            );
        }
    }

    let t0 = Instant::now();
    let distributed = coordinator
        .run_grid(&grid, true)
        .expect("distributed grid runs");
    let dist_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let local = grid.run();
    let local_wall = t1.elapsed().as_secs_f64();

    assert_eq!(
        distributed.fingerprint(),
        local.fingerprint(),
        "distributed merge must be bit-identical to the single-process grid"
    );
    let trace = distributed.merged_trace_csv();
    assert!(
        trace.matches("# === cell").count() == grid.len(),
        "every cell ships its recorded trace"
    );
    println!(
        "cluster soak: {} cells on {N_WORKERS} workers in {dist_wall:.2} s \
         ({:.1} cells/s; single-process {local_wall:.2} s), fingerprint {:016x}",
        grid.len(),
        grid.len() as f64 / dist_wall.max(1e-9),
        distributed.fingerprint(),
    );

    // Live fan-out on the same fleet: framed submissions round-robin
    // across workers, then a broadcast drain.
    let mut live = coordinator.live().expect("live fan-out connects");
    for _ in 0..LIVE_SUBMISSIONS {
        live.submit(PipelineId(0), NodeId(0))
            .expect("submission lands");
    }
    live.drain_all().expect("drain broadcast");
    let mut admitted = 0u64;
    for worker in workers {
        let report = worker.shutdown().expect("worker drains cleanly");
        admitted += report.sources.iter().map(|s| s.admitted).sum::<u64>();
    }
    assert_eq!(
        admitted, LIVE_SUBMISSIONS as u64,
        "every live submission admitted exactly once across the fleet"
    );
    println!("cluster_soak ok: {LIVE_SUBMISSIONS} live submissions admitted across the fleet");
}
