//! The tentpole proof: a 4-worker distributed grid run merges to
//! `Metrics` fingerprints bit-identical to the single-process run of
//! the same grid, cell by cell and in aggregate, with recorded traces
//! shipped back intact.

// Test harness timeouts read the wall clock; exempt from the
// workspace determinism lint (bit-identical merging is what the test
// itself asserts).
#![allow(clippy::disallowed_methods)]

use dream_bench::{run_spec, DreamVariant, ExperimentGrid, RunSpec, SchedulerKind};
use dream_coordinator::{spawn_local_worker, CoordError, Coordinator};
use dream_cost::PlatformPreset;
use dream_models::{NodeId, PipelineId, ScenarioKind};

fn four_worker_cluster() -> (Vec<dream_coordinator::LocalWorker>, Coordinator) {
    let workers: Vec<_> = (0..4)
        .map(|i| spawn_local_worker(40 + i as u64).expect("worker spawns"))
        .collect();
    let addrs = workers.iter().map(|w| w.addr().to_string()).collect();
    let coordinator = Coordinator::connect(addrs).expect("cluster reachable");
    (workers, coordinator)
}

#[test]
fn four_workers_merge_bit_identically_to_single_process() {
    let (workers, coordinator) = four_worker_cluster();
    assert_eq!(coordinator.n_workers(), 4);

    // 2 schedulers × 3 seeds = 6 cells round-robined over 4 workers, so
    // shards are uneven (2,2,1,1) — merge order must still be grid order.
    let mut grid = ExperimentGrid::new();
    for scheduler in [
        SchedulerKind::Edf,
        SchedulerKind::DreamFixed(DreamVariant::Full, Default::default()),
    ] {
        grid.add_seed_sweep(
            RunSpec::new(scheduler, ScenarioKind::ArCall, PlatformPreset::Homo4kWs2)
                .with_duration_ms(200),
            3,
        );
    }

    let distributed = coordinator
        .run_grid(&grid, true)
        .expect("distributed grid runs");
    let local = grid.run();

    assert_eq!(
        distributed.fingerprint(),
        local.fingerprint(),
        "merged fingerprint must be bit-identical to the single-process grid"
    );
    assert_eq!(distributed.outcomes().len(), grid.len());
    for (i, (run, outcome)) in local.runs().iter().zip(distributed.outcomes()).enumerate() {
        assert_eq!(outcome.index, i as u64, "outcomes arrive in grid order");
        assert_eq!(
            outcome.fingerprint,
            run.metrics.fingerprint(),
            "cell {i} fingerprint must match its local run bit-exactly"
        );
        assert_eq!(outcome.uxcost.to_bits(), run.uxcost.to_bits());
        assert!(
            !outcome.trace_csv.is_empty(),
            "record_traces ships every cell's trace back"
        );
    }

    // The merged trace artifact carries one section per cell, in order.
    let trace = distributed.merged_trace_csv();
    assert_eq!(trace.matches("# === cell").count(), grid.len());

    // The same cluster also serves live framed traffic afterwards.
    let mut live = coordinator.live().expect("live fan-out connects");
    for _ in 0..8 {
        live.submit(PipelineId(0), NodeId(0))
            .expect("submission lands");
    }
    live.drain_all().expect("drain broadcast");
    let mut admitted = 0u64;
    for worker in workers {
        let report = worker.shutdown().expect("worker drains cleanly");
        admitted += report.sources.iter().map(|s| s.admitted).sum::<u64>();
        for source in &report.sources {
            assert_eq!(source.submitted, source.funnel_total());
        }
    }
    assert_eq!(admitted, 8, "every live submission admitted exactly once");
}

#[test]
fn distributed_cells_match_direct_run_spec_execution() {
    // One worker is enough to prove the wire round trip alone does not
    // perturb a cell: worker-executed outcome == run_spec() locally.
    let worker = spawn_local_worker(77).expect("worker spawns");
    let coordinator =
        Coordinator::connect(vec![worker.addr().to_string()]).expect("worker reachable");

    let spec = RunSpec::new(
        SchedulerKind::DreamTuned(DreamVariant::Full),
        ScenarioKind::VrGaming,
        PlatformPreset::Homo4kWs2,
    )
    .with_duration_ms(200)
    .with_seed(9);
    let mut grid = ExperimentGrid::new();
    grid.push(spec.clone());

    let distributed = coordinator.run_grid(&grid, false).expect("grid runs");
    let direct = run_spec(&spec);
    assert_eq!(distributed.outcomes().len(), 1);
    let outcome = &distributed.outcomes()[0];
    assert_eq!(outcome.fingerprint, direct.metrics.fingerprint());
    assert_eq!(outcome.uxcost.to_bits(), direct.uxcost.to_bits());
    assert!(
        outcome.trace_csv.is_empty(),
        "traces only ship when requested"
    );

    drop(coordinator);
    worker.shutdown().expect("worker drains cleanly");
}

#[test]
fn empty_worker_list_is_a_typed_error() {
    match Coordinator::connect(Vec::new()) {
        Err(CoordError::NoWorkers) => {}
        other => panic!("expected NoWorkers, got {other:?}"),
    }
}
