//! The coordinator CLI: shards an experiment grid across worker nodes
//! over wire protocol v1, merges the outcomes, and (with `--verify`)
//! proves the merged fingerprint bit-identical to a single-process run
//! of the same grid.
//!
//! ```text
//! dream-coordinator --workers HOST:PORT,HOST:PORT,... \
//!     [--schedulers fcfs,edf,...] [--scenarios ar_call,...] \
//!     [--preset NAME] [--seeds N] [--duration-ms N] \
//!     [--record-traces] [--verify] [--out CSV] [--trace-out CSV] \
//!     [--drain]
//! ```
//!
//! Exit code 0 means every requested check passed; `--verify` mismatch
//! exits 1.

use std::fmt::Write as _;

use dream_bench::{DreamVariant, ExperimentGrid, RunSpec, SchedulerKind};
use dream_coordinator::Coordinator;
use dream_cost::PlatformPreset;
use dream_models::ScenarioKind;
use dream_serve::parse_scenario_kind;

fn parse_scheduler(name: &str) -> Option<SchedulerKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "fcfs" => SchedulerKind::Fcfs,
        "static" => SchedulerKind::Static,
        "edf" => SchedulerKind::Edf,
        "veltair" => SchedulerKind::Veltair,
        "planaria" => SchedulerKind::Planaria,
        "dream-mapscore" => SchedulerKind::DreamTuned(DreamVariant::MapScore),
        "dream-smartdrop" => SchedulerKind::DreamTuned(DreamVariant::SmartDrop),
        "dream-full" => SchedulerKind::DreamTuned(DreamVariant::Full),
        _ => return None,
    })
}

fn parse_preset(name: &str) -> Option<PlatformPreset> {
    PlatformPreset::all()
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(name))
}

struct Options {
    workers: Vec<String>,
    schedulers: Vec<SchedulerKind>,
    scenarios: Vec<ScenarioKind>,
    preset: PlatformPreset,
    seeds: u64,
    duration_ms: u64,
    record_traces: bool,
    verify: bool,
    out: Option<String>,
    trace_out: Option<String>,
    drain: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dream-coordinator --workers HOST:PORT[,HOST:PORT...] \
         [--schedulers LIST] [--scenarios LIST] [--preset NAME] [--seeds N] \
         [--duration-ms N] [--record-traces] [--verify] [--out CSV] \
         [--trace-out CSV] [--drain]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut opts = Options {
        workers: Vec::new(),
        schedulers: vec![SchedulerKind::Fcfs, SchedulerKind::Edf],
        scenarios: vec![ScenarioKind::ArCall],
        preset: PlatformPreset::Homo4kWs2,
        seeds: 2,
        duration_ms: 300,
        record_traces: false,
        verify: false,
        out: None,
        trace_out: None,
        drain: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--workers" => {
                opts.workers = value("--workers")
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--schedulers" => {
                opts.schedulers = value("--schedulers")
                    .split(',')
                    .map(|s| {
                        parse_scheduler(s.trim()).unwrap_or_else(|| {
                            eprintln!("unknown scheduler {s:?}");
                            usage();
                        })
                    })
                    .collect();
            }
            "--scenarios" => {
                opts.scenarios = value("--scenarios")
                    .split(',')
                    .map(|s| {
                        parse_scenario_kind(s.trim()).unwrap_or_else(|| {
                            eprintln!("unknown scenario {s:?}");
                            usage();
                        })
                    })
                    .collect();
            }
            "--preset" => {
                let name = value("--preset");
                opts.preset = parse_preset(&name).unwrap_or_else(|| {
                    eprintln!("unknown preset {name:?}");
                    usage();
                });
            }
            "--seeds" => {
                opts.seeds = value("--seeds").parse().unwrap_or_else(|_| usage());
            }
            "--duration-ms" => {
                opts.duration_ms = value("--duration-ms").parse().unwrap_or_else(|_| usage());
            }
            "--record-traces" => opts.record_traces = true,
            "--verify" => opts.verify = true,
            "--out" => opts.out = Some(value("--out")),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")),
            "--drain" => opts.drain = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if opts.workers.is_empty() {
        eprintln!("--workers is required");
        usage();
    }
    if opts.schedulers.is_empty() || opts.scenarios.is_empty() || opts.seeds == 0 {
        eprintln!("need at least one scheduler, scenario, and seed");
        usage();
    }
    opts
}

fn main() {
    let opts = parse_options();
    let mut grid = ExperimentGrid::new();
    for &scenario in &opts.scenarios {
        for &scheduler in &opts.schedulers {
            let spec =
                RunSpec::new(scheduler, scenario, opts.preset).with_duration_ms(opts.duration_ms);
            grid.add_seed_sweep(spec, opts.seeds);
        }
    }
    println!(
        "grid: {} cells across {} workers",
        grid.len(),
        opts.workers.len()
    );

    let coordinator = Coordinator::connect(opts.workers.clone()).unwrap_or_else(|e| {
        eprintln!("connect: {e}");
        std::process::exit(1);
    });
    let distributed = coordinator
        .run_grid(&grid, opts.record_traces)
        .unwrap_or_else(|e| {
            eprintln!("distributed run: {e}");
            std::process::exit(1);
        });
    println!("merged fingerprint: {:016x}", distributed.fingerprint());

    if let Some(path) = &opts.out {
        let mut csv =
            String::from("index,fingerprint,uxcost,mean_violation_rate,mean_norm_energy\n");
        for o in distributed.outcomes() {
            let _ = writeln!(
                csv,
                "{},{:016x},{},{},{}",
                o.index, o.fingerprint, o.uxcost, o.mean_violation_rate, o.mean_norm_energy
            );
        }
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        }
        println!("outcomes written to {path}");
    }
    if let Some(path) = &opts.trace_out {
        if let Err(e) = std::fs::write(path, distributed.merged_trace_csv()) {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        }
        println!("merged trace written to {path}");
    }

    let mut failed = false;
    if opts.verify {
        let local = grid.run();
        let local_fp = local.fingerprint();
        let dist_fp = distributed.fingerprint();
        if local_fp == dist_fp {
            println!("verify: OK — single-process fingerprint {local_fp:016x} matches");
        } else {
            eprintln!(
                "verify: MISMATCH — single-process {local_fp:016x} vs distributed {dist_fp:016x}"
            );
            failed = true;
        }
        // Cell-level audit so a mismatch names its cell.
        for (run, outcome) in local.runs().iter().zip(distributed.outcomes()) {
            if run.metrics.fingerprint() != outcome.fingerprint {
                eprintln!(
                    "verify: cell {} differs (local {:016x}, worker {:016x})",
                    outcome.index,
                    run.metrics.fingerprint(),
                    outcome.fingerprint
                );
            }
        }
    }

    if opts.drain {
        match coordinator.live() {
            Ok(mut live) => {
                if let Err(e) = live.drain_all() {
                    eprintln!("drain: {e}");
                    failed = true;
                } else {
                    println!("workers drained");
                }
            }
            Err(e) => {
                eprintln!("drain connect: {e}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
