//! A worker node: a `dream-serve` engine on a virtual clock, listening
//! on TCP with a grid-cell runner attached, alive until a peer sends
//! `drain` (v0 line or v1 framed — both faces work).
//!
//! ```text
//! dream-worker [--addr HOST:PORT] [--port-file PATH] [--seed N]
//! ```
//!
//! With `--addr 127.0.0.1:0` (the default) the kernel picks the port;
//! `--port-file` writes the bound `host:port` to a file so a driver
//! script can discover it without races.

use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use dream_bench::GridCellRunner;
use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{Platform, PlatformPreset};
use dream_models::{CascadeProbability, Scenario, ScenarioKind};
use dream_serve::{listen_tcp_with_runner, ManualClock, ServeConfig, ServeEngine};

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut port_file: Option<String> = None;
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--port-file" => port_file = Some(value("--port-file")),
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("--seed: {e}");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: dream-worker [--addr HOST:PORT] [--port-file PATH] [--seed N]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Homo4kWs2),
        Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
    );
    config.seed = seed;
    config.clock = Arc::new(ManualClock::new());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    let (engine, handle) =
        ServeEngine::new(config, Box::new(DreamScheduler::new(DreamConfig::full())))
            .unwrap_or_else(|e| {
                eprintln!("engine: {e}");
                std::process::exit(1);
            });
    let (bound, socket) =
        listen_tcp_with_runner(&handle, addr.as_str(), Some(Arc::new(GridCellRunner)))
            .unwrap_or_else(|e| {
                eprintln!("bind {addr}: {e}");
                std::process::exit(1);
            });
    if let Some(path) = port_file {
        let payload = format!("{bound}\n");
        std::fs::write(&path, payload).unwrap_or_else(|e| {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        });
    }
    println!("dream-worker listening on {bound} (seed {seed})");
    let _ = std::io::stdout().flush();

    // Blocks until a peer drains the session.
    match engine.run() {
        Ok(report) => {
            socket.shutdown();
            println!(
                "dream-worker drained: fingerprint={:016x} ticks={}",
                report.outcome.metrics().fingerprint(),
                report.ticks
            );
        }
        Err(e) => {
            socket.shutdown();
            eprintln!("engine failed: {e}");
            std::process::exit(1);
        }
    }
}
