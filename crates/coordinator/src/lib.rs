//! `dream-coordinator` — multi-node experiment fabric and metrics
//! plane over the framed wire protocol (v1/v2).
//!
//! A [`Coordinator`] fans an [`ExperimentGrid`] out across N worker
//! nodes (each a `dream-serve` engine started with a
//! [`GridCellRunner`]) and merges the seed-keyed outcomes back into one
//! auditable result:
//!
//! * **Sharding** is round-robin by global cell index (`index %
//!   n_workers`), so the assignment is a pure function of the grid and
//!   the worker count.
//! * **Merging** reassembles outcomes by global index and mixes their
//!   `Metrics` fingerprints in grid order — structurally identical to
//!   [`GridResults::fingerprint`](dream_bench::GridResults::fingerprint),
//!   so a distributed run is *bit-identical* to the single-process run
//!   of the same grid, whatever the worker count or completion order.
//!   That identity is the distribution-safety witness this workspace's
//!   determinism stack (merge-order-invariant aggregation, replayable
//!   sessions) was built to provide, and `tests/cluster_equivalence.rs`
//!   asserts it end-to-end.
//! * **Live ingress** can be fanned out too ([`LiveFanout`]):
//!   submissions round-robin across workers while control commands
//!   (swap/fault/drain) broadcast to all of them.
//! * **Fleet metrics** ([`LiveFanout::fleet_view`]) fold per-worker v2
//!   snapshots into one [`FleetView`]: counters summed, sojourn
//!   histograms merged bucket-wise — fleet-wide quantiles are exact
//!   (merging histograms, never averaging per-worker percentiles), and
//!   the fold is commutative/associative so worker order is irrelevant.
//!
//! Workers are plain `dream-serve` nodes; [`spawn_local_worker`] starts
//! one in-process (tests, soaks), `src/bin/dream_worker.rs` starts one
//! as a process (`scripts/check_cluster.sh` drives four of them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use dream_bench::{to_cell_spec, ExperimentGrid, GridCellRunner};
use dream_core::{DreamConfig, DreamScheduler};
use dream_cost::{AcceleratorId, Platform, PlatformPreset};
use dream_models::{CascadeProbability, NodeId, PipelineId, Scenario, ScenarioKind};
use dream_serve::{
    listen_tcp_with_runner, CellOutcome, CellSpec, ClientError, ManualClock, ServeConfig,
    ServeEngine, ServeHandle, SessionReport, SocketServer, WireClient, WireSnapshot,
};
use dream_sim::{FaultKind, Fnv64, Histogram, LiveError, SimTime};

/// Why a coordinator operation failed.
#[derive(Debug)]
pub enum CoordError {
    /// The coordinator was given no worker addresses.
    NoWorkers,
    /// A grid cell is not wire-shippable (recorded traces, custom cost
    /// backends) or otherwise invalid.
    Spec(String),
    /// A worker connection or call failed.
    Worker {
        /// The worker's address.
        addr: String,
        /// What went wrong.
        error: ClientError,
    },
    /// The merged outcomes are missing a cell (a worker returned fewer
    /// outcomes than it was shipped).
    MissingCell {
        /// The absent global index.
        index: u64,
    },
    /// Two outcomes claimed the same global index.
    DuplicateCell {
        /// The colliding global index.
        index: u64,
    },
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::NoWorkers => write!(f, "no worker addresses"),
            CoordError::Spec(reason) => write!(f, "cell not shippable: {reason}"),
            CoordError::Worker { addr, error } => write!(f, "worker {addr}: {error}"),
            CoordError::MissingCell { index } => write!(f, "merged outcomes miss cell {index}"),
            CoordError::DuplicateCell { index } => {
                write!(f, "duplicate outcome for cell {index}")
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// A set of worker addresses the coordinator fans work out to.
#[derive(Debug, Clone)]
pub struct Coordinator {
    addrs: Vec<String>,
}

impl Coordinator {
    /// Connects to every worker (a handshake + ping each) and returns
    /// the coordinator on success.
    ///
    /// # Errors
    ///
    /// [`CoordError::NoWorkers`] for an empty list; the first failing
    /// worker otherwise.
    pub fn connect(addrs: Vec<String>) -> Result<Self, CoordError> {
        if addrs.is_empty() {
            return Err(CoordError::NoWorkers);
        }
        for addr in &addrs {
            let mut client = WireClient::connect_tcp(addr).map_err(|error| CoordError::Worker {
                addr: addr.clone(),
                error,
            })?;
            client.ping().map_err(|error| CoordError::Worker {
                addr: addr.clone(),
                error,
            })?;
        }
        Ok(Self { addrs })
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.addrs.len()
    }

    /// The worker addresses, in shard order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Runs every cell of `grid` across the workers and merges the
    /// outcomes in grid order.
    ///
    /// Cell `i` runs on worker `i % n_workers`; each worker executes
    /// its shard through the same `run_spec` path as a local grid, so
    /// the merged [`DistributedResults::fingerprint`] is bit-identical
    /// to `grid.run().fingerprint()` regardless of worker count.
    ///
    /// # Errors
    ///
    /// Unshippable specs, worker failures, and merge-integrity
    /// violations (missing/duplicate cells).
    pub fn run_grid(
        &self,
        grid: &ExperimentGrid,
        record_traces: bool,
    ) -> Result<DistributedResults, CoordError> {
        let cells: Vec<CellSpec> = grid
            .specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| to_cell_spec(i as u64, spec))
            .collect::<Result<_, String>>()
            .map_err(CoordError::Spec)?;
        let n = self.addrs.len();
        let mut shards: Vec<Vec<CellSpec>> = vec![Vec::new(); n];
        for cell in cells {
            let worker = (cell.index as usize) % n;
            shards[worker].push(cell);
        }
        let mut results: Vec<Option<Result<Vec<CellOutcome>, CoordError>>> =
            std::iter::repeat_with(|| None).take(n).collect();
        std::thread::scope(|scope| {
            for ((addr, shard), slot) in self.addrs.iter().zip(&shards).zip(&mut results) {
                scope.spawn(move || {
                    *slot = Some(run_shard(addr, shard.clone(), record_traces));
                });
            }
        });
        let mut outcomes = Vec::with_capacity(grid.len());
        for slot in results {
            outcomes.extend(slot.expect("every shard thread writes its slot")?);
        }
        outcomes.sort_unstable_by_key(|o| o.index);
        for (i, outcome) in outcomes.iter().enumerate() {
            let index = i as u64;
            if outcome.index > index {
                return Err(CoordError::MissingCell { index });
            }
            if outcome.index < index {
                return Err(CoordError::DuplicateCell {
                    index: outcome.index,
                });
            }
        }
        if outcomes.len() != grid.len() {
            return Err(CoordError::MissingCell {
                index: outcomes.len() as u64,
            });
        }
        Ok(DistributedResults { outcomes })
    }

    /// Opens a live-ingress fan-out over the workers.
    ///
    /// # Errors
    ///
    /// The first failing worker connection.
    pub fn live(&self) -> Result<LiveFanout, CoordError> {
        let mut clients = Vec::with_capacity(self.addrs.len());
        for addr in &self.addrs {
            clients.push((
                addr.clone(),
                WireClient::connect_tcp(addr).map_err(|error| CoordError::Worker {
                    addr: addr.clone(),
                    error,
                })?,
            ));
        }
        Ok(LiveFanout { clients, next: 0 })
    }
}

fn run_shard(
    addr: &str,
    shard: Vec<CellSpec>,
    record_traces: bool,
) -> Result<Vec<CellOutcome>, CoordError> {
    if shard.is_empty() {
        return Ok(Vec::new());
    }
    let wrap = |error: ClientError| CoordError::Worker {
        addr: addr.to_string(),
        error,
    };
    let mut client = WireClient::connect_tcp(addr).map_err(wrap)?;
    client.run_cells(shard, record_traces).map_err(wrap)
}

/// The merged outcomes of a distributed grid run, in grid order.
#[derive(Debug, Clone)]
pub struct DistributedResults {
    outcomes: Vec<CellOutcome>,
}

impl DistributedResults {
    /// Per-cell outcomes, sorted by global grid index.
    pub fn outcomes(&self) -> &[CellOutcome] {
        &self.outcomes
    }

    /// The merged determinism witness: per-cell `Metrics` fingerprints
    /// mixed in grid order — the same construction as
    /// [`GridResults::fingerprint`](dream_bench::GridResults::fingerprint),
    /// so equality against the single-process value is bit-exact, not
    /// approximate.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        for outcome in &self.outcomes {
            h.mix(outcome.fingerprint);
        }
        h.finish()
    }

    /// Concatenates the per-cell recorded arrival traces (present when
    /// the run asked for traces) into one auditable CSV document, cells
    /// in grid order with `# === cell N` separators.
    pub fn merged_trace_csv(&self) -> String {
        let mut out = String::new();
        for outcome in &self.outcomes {
            if outcome.trace_csv.is_empty() {
                continue;
            }
            out.push_str(&format!("# === cell {}\n", outcome.index));
            out.push_str(&outcome.trace_csv);
        }
        out
    }
}

/// Live ingress fanned out across the workers: submissions round-robin,
/// control commands broadcast.
pub struct LiveFanout {
    clients: Vec<(String, WireClient)>,
    next: usize,
}

impl LiveFanout {
    /// Submits one request to the next worker (round-robin).
    ///
    /// # Errors
    ///
    /// The worker's refusal or transport failure.
    pub fn submit(&mut self, pipeline: PipelineId, node: NodeId) -> Result<(), CoordError> {
        let slot = self.next;
        self.next = (self.next + 1) % self.clients.len();
        let (addr, client) = &mut self.clients[slot];
        client
            .submit(pipeline, node)
            .map_err(|error| CoordError::Worker {
                addr: addr.clone(),
                error,
            })
    }

    /// Broadcasts a scenario hot-swap to every worker.
    ///
    /// # Errors
    ///
    /// The first failing worker.
    pub fn swap_all(&mut self, scenario: &str, cascade: f64) -> Result<(), CoordError> {
        for (addr, client) in &mut self.clients {
            client
                .swap(scenario, cascade)
                .map_err(|error| CoordError::Worker {
                    addr: addr.clone(),
                    error,
                })?;
        }
        Ok(())
    }

    /// Broadcasts a fault order to every worker.
    ///
    /// # Errors
    ///
    /// The first failing worker.
    pub fn fault_all(
        &mut self,
        acc: AcceleratorId,
        kind: FaultKind,
        at: Option<SimTime>,
    ) -> Result<(), CoordError> {
        for (addr, client) in &mut self.clients {
            client
                .fault(acc, kind, at)
                .map_err(|error| CoordError::Worker {
                    addr: addr.clone(),
                    error,
                })?;
        }
        Ok(())
    }

    /// Broadcasts a graceful drain to every worker.
    ///
    /// # Errors
    ///
    /// The first failing worker.
    pub fn drain_all(&mut self) -> Result<(), CoordError> {
        for (addr, client) in &mut self.clients {
            client.drain().map_err(|error| CoordError::Worker {
                addr: addr.clone(),
                error,
            })?;
        }
        Ok(())
    }

    /// Collects the latest snapshot from every worker (in worker
    /// order); workers that have not published yet are skipped.
    ///
    /// # Errors
    ///
    /// Transport failures (an [`dream_serve::ErrorCode::Unavailable`]
    /// reply is not an error here).
    pub fn snapshots(&mut self) -> Result<Vec<WireSnapshot>, CoordError> {
        let mut out = Vec::with_capacity(self.clients.len());
        for (addr, client) in &mut self.clients {
            match client.snapshot() {
                Ok(snapshot) => out.push(snapshot),
                Err(ClientError::Server { .. }) => {}
                Err(error) => {
                    return Err(CoordError::Worker {
                        addr: addr.clone(),
                        error,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Collects one snapshot per worker and folds them into a single
    /// [`FleetView`] — the cluster-wide metrics plane.
    ///
    /// # Errors
    ///
    /// As [`snapshots`](Self::snapshots).
    pub fn fleet_view(&mut self) -> Result<FleetView, CoordError> {
        Ok(FleetView::aggregate(&self.snapshots()?))
    }
}

/// A cluster-wide roll-up of per-worker [`WireSnapshot`]s: additive
/// counters summed, per-worker sojourn histograms merged into one
/// mergeable fleet histogram (log2 buckets add bucket-wise, so the
/// merge is exact, order-invariant, and loses nothing a percentile
/// needs — unlike averaging per-worker percentiles, which is wrong).
///
/// Workers still speaking protocol v1 contribute zeros to the v2-only
/// fields; `workers` counts every snapshot folded in regardless.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetView {
    /// Snapshots folded into this view.
    pub workers: usize,
    /// Workers currently draining.
    pub draining: usize,
    /// Summed ingress backlogs.
    pub ingress_backlog: u64,
    /// Summed engine event backlogs.
    pub event_backlog: u64,
    /// Total arrivals admitted across the fleet.
    pub admitted: u64,
    /// Total requests shed across the fleet.
    pub shed: u64,
    /// Total requests rejected across the fleet.
    pub rejected: u64,
    /// Total faults injected across the fleet (v2 workers only).
    pub faults_injected: u64,
    /// Total fault-driven requeues across the fleet (v2 workers only).
    pub fault_requeues: u64,
    /// Total deadline misses under active fault windows (v2 workers
    /// only).
    pub deadline_miss_under_faults: u64,
    /// The merged fleet sojourn histogram (v2 workers only).
    pub sojourn_hist: Histogram,
}

impl FleetView {
    /// Folds per-worker snapshots into one fleet view. Aggregation is
    /// commutative and associative, so worker order cannot change the
    /// result.
    pub fn aggregate(snapshots: &[WireSnapshot]) -> Self {
        let mut view = FleetView::default();
        for snap in snapshots {
            view.workers += 1;
            view.draining += usize::from(snap.draining);
            view.ingress_backlog += snap.ingress_backlog;
            view.event_backlog += snap.event_backlog;
            view.admitted += snap.admitted;
            view.shed += snap.shed;
            view.rejected += snap.rejected;
            view.faults_injected += snap.faults_injected;
            view.fault_requeues += snap.fault_requeues;
            view.deadline_miss_under_faults += snap.deadline_miss_under_faults;
            view.sojourn_hist
                .merge(&Histogram::from_sparse(&snap.sojourn_hist));
        }
        view
    }

    /// Fleet-wide sojourn quantile in milliseconds (`None` until any
    /// worker has completed a task).
    pub fn sojourn_quantile_ms(&self, q: f64) -> Option<f64> {
        self.sojourn_hist.quantile_ms(q)
    }
}

/// An in-process worker node (tests and soaks): a `dream-serve` engine
/// on a virtual clock with a TCP listener and a [`GridCellRunner`].
pub struct LocalWorker {
    addr: SocketAddr,
    handle: ServeHandle,
    socket: Option<SocketServer>,
    engine: Option<std::thread::JoinHandle<Result<SessionReport, LiveError>>>,
}

impl LocalWorker {
    /// The worker's listen address (loopback, ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine handle (snapshots, drain, in-process clients).
    pub fn handle(&self) -> &ServeHandle {
        &self.handle
    }

    /// Drains the engine, joins it, and stops the listener.
    ///
    /// # Panics
    ///
    /// Panics if the engine thread itself panicked.
    pub fn shutdown(mut self) -> Result<SessionReport, LiveError> {
        self.handle.drain();
        let report = self
            .engine
            .take()
            .expect("engine joined once")
            .join()
            .expect("worker engine thread must not panic");
        if let Some(socket) = self.socket.take() {
            socket.shutdown();
        }
        report
    }
}

impl Drop for LocalWorker {
    fn drop(&mut self) {
        self.handle.drain();
        if let Some(engine) = self.engine.take() {
            let _ = engine.join();
        }
    }
}

/// Starts a [`LocalWorker`]: a serve engine on a [`ManualClock`] (the
/// live session idles at virtual time zero until drained) listening on
/// an ephemeral loopback port with a [`GridCellRunner`] attached.
///
/// # Errors
///
/// Engine construction and bind failures.
pub fn spawn_local_worker(seed: u64) -> std::io::Result<LocalWorker> {
    let mut config = ServeConfig::new(
        Platform::preset(PlatformPreset::Homo4kWs2),
        Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper()),
    );
    config.seed = seed;
    config.clock = Arc::new(ManualClock::new());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    let (engine, handle) =
        ServeEngine::new(config, Box::new(DreamScheduler::new(DreamConfig::full())))
            .map_err(|e| std::io::Error::other(e.to_string()))?;
    let engine = std::thread::spawn(move || engine.run());
    let (addr, socket) =
        listen_tcp_with_runner(&handle, "127.0.0.1:0", Some(Arc::new(GridCellRunner)))?;
    Ok(LocalWorker {
        addr,
        handle,
        socket: Some(socket),
        engine: Some(engine),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(admitted: u64, faults: u64, hist: Vec<(u32, u64)>) -> WireSnapshot {
        WireSnapshot {
            tick: 1,
            now_ns: 0,
            frontier_ns: 0,
            phase: 0,
            draining: false,
            ingress_backlog: 2,
            event_backlog: 3,
            admitted,
            shed: 1,
            rejected: 0,
            fingerprint: 0,
            faults_injected: faults,
            fault_requeues: faults / 2,
            deadline_miss_under_faults: 0,
            sojourn_hist: hist,
        }
    }

    #[test]
    fn fleet_view_sums_counters_and_merges_histograms() {
        // One v2 worker, one v2 worker with overlapping buckets, one
        // v1-era worker contributing zeros to the v2-only fields.
        let snapshots = [
            snap(10, 4, vec![(1, 2), (21, 6)]),
            snap(5, 2, vec![(1, 1), (30, 1)]),
            snap(7, 0, Vec::new()),
        ];
        let view = FleetView::aggregate(&snapshots);
        assert_eq!(view.workers, 3);
        assert_eq!(view.admitted, 22);
        assert_eq!(view.shed, 3);
        assert_eq!(view.ingress_backlog, 6);
        assert_eq!(view.faults_injected, 6);
        assert_eq!(view.fault_requeues, 3);
        assert_eq!(view.sojourn_hist.total(), 10);
        // Bucket-wise merge: bucket 1 holds 3 samples, so the median
        // lands in bucket 21 (upper bound (1<<21)-1 ns ≈ 2.097 ms).
        let expected = ((1u64 << 21) - 1) as f64 / 1.0e6;
        assert_eq!(view.sojourn_quantile_ms(0.5), Some(expected));
        // Aggregation is order-invariant.
        let mut reversed = snapshots.to_vec();
        reversed.reverse();
        assert_eq!(FleetView::aggregate(&reversed), view);
        // The empty fleet is the identity.
        assert_eq!(FleetView::aggregate(&[]).workers, 0);
        assert_eq!(FleetView::aggregate(&[]).sojourn_quantile_ms(0.5), None);
    }
}
