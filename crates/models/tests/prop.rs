//! Property-based tests on layer shapes and graph invariants.

use dream_models::{GraphBuilder, Layer, LayerKind, Model};
use proptest::prelude::*;

fn arb_conv() -> impl Strategy<Value = LayerKind> {
    (
        1u32..256,
        1u32..256,
        1u32..64,
        1u32..64,
        prop_oneof![Just(1u32), Just(3), Just(5), Just(7)],
        1u32..3,
        any::<bool>(),
    )
        .prop_map(|(h, w, c_mult, out_mult, k, s, depthwise)| {
            let in_c = c_mult * 4;
            if depthwise {
                LayerKind::Conv2d {
                    in_h: h,
                    in_w: w,
                    in_c,
                    out_c: in_c,
                    kernel: k,
                    stride: s,
                    groups: in_c,
                }
            } else {
                LayerKind::Conv2d {
                    in_h: h,
                    in_w: w,
                    in_c,
                    out_c: out_mult * 4,
                    kernel: k,
                    stride: s,
                    groups: 1,
                }
            }
        })
}

fn arb_layer() -> impl Strategy<Value = LayerKind> {
    prop_oneof![
        arb_conv(),
        (1u32..128, 1u32..4096, 1u32..4096).prop_map(|(m, n, k)| LayerKind::Gemm { m, n, k }),
        (1u64..1_000_000).prop_map(|elems| LayerKind::Elementwise { elems }),
        (1u32..128, 1u32..128, 1u32..256, 1u32..4, 1u32..4).prop_map(|(h, w, c, k, s)| {
            LayerKind::Pool {
                in_h: h,
                in_w: w,
                c,
                kernel: k,
                stride: s,
            }
        }),
    ]
}

proptest! {
    /// Every valid layer yields positive, internally consistent stats.
    #[test]
    fn layer_stats_are_consistent(kind in arb_layer()) {
        let layer = Layer::new("p", kind).unwrap();
        let s = layer.stats();
        prop_assert!(s.macs + s.vector_ops > 0, "no work: {s:?}");
        prop_assert!(s.input_bytes > 0);
        prop_assert!(s.output_bytes > 0);
        prop_assert!(s.out_elems > 0);
        prop_assert!(s.ws_parallel_work > 0);
        prop_assert!(s.reduction_depth > 0);
        prop_assert!(s.kernel_area > 0);
        // Weight bytes are zero exactly for weight-less layers.
        match layer.kind() {
            LayerKind::Pool { .. } | LayerKind::Elementwise { .. } =>
                prop_assert_eq!(s.weight_bytes, 0),
            _ => prop_assert!(s.weight_bytes > 0),
        }
    }

    /// MACs scale linearly with the GEMM batch dimension.
    #[test]
    fn gemm_macs_scale_with_batch(m in 1u32..64, n in 1u32..512, k in 1u32..512) {
        let one = Layer::new("a", LayerKind::Gemm { m: 1, n, k }).unwrap();
        let many = Layer::new("b", LayerKind::Gemm { m, n, k }).unwrap();
        prop_assert_eq!(many.stats().macs, one.stats().macs * u64::from(m));
    }

    /// Execution probabilities stay in [0, 1] and expected work never
    /// exceeds worst-case work, for random gate placements.
    #[test]
    fn gates_keep_probabilities_sane(
        n_layers in 2usize..30,
        skip_at in 1usize..29,
        span in 1usize..5,
        p_skip in 0.0f64..1.0,
        exit_at in 0usize..28,
        p_exit in 0.0f64..1.0,
    ) {
        let mut b = GraphBuilder::new("prop");
        for i in 0..n_layers {
            let elems = 100 + i as u64;
            b.push(Layer::new("l", LayerKind::Elementwise { elems }).unwrap());
        }
        let last = (skip_at + span - 1).min(n_layers - 1);
        if skip_at < n_layers {
            b.skip_block(skip_at, last, p_skip);
        }
        if exit_at + 1 < n_layers {
            b.exit_point(exit_at, p_exit);
        }
        let graph = b.build().unwrap();
        for i in 0..graph.len() {
            let p = graph.execution_probability(i);
            prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
        prop_assert!(graph.expected_ops() <= graph.total_ops() as f64 + 1e-9);
        prop_assert!(graph.expected_ops() > 0.0);
    }

    /// Supernet variants preserve heaviest-first ordering when constructed
    /// from sorted inputs, and variant lookups agree with the list.
    #[test]
    fn supernet_round_trips(sizes in proptest::collection::vec(1u64..100_000, 1..5)) {
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let variants: Vec<_> = sorted
            .iter()
            .map(|&elems| {
                let mut b = GraphBuilder::new("v");
                b.push(Layer::new("l", LayerKind::Elementwise { elems }).unwrap());
                b.build().unwrap()
            })
            .collect();
        let model = Model::supernet("s", variants).unwrap();
        prop_assert_eq!(model.variant_count(), sorted.len());
        let mut prev = u64::MAX;
        for v in model.variants() {
            prop_assert!(v.total_ops() <= prev);
            prev = v.total_ops();
        }
    }
}
