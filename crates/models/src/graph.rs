use crate::{Layer, ModelError};

/// A span of layers that is *skipped* with probability `p_skip` when the
/// preceding layer completes (SkipNet-style gating).
///
/// The gate is resolved at runtime, *after* layer `first - 1` finishes, so a
/// scheduler only ever knows the skip probability in advance — exactly the
/// "constrained dynamicity" the paper exploits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkipBlock {
    /// Index of the first skippable layer.
    pub first: usize,
    /// Index of the last skippable layer (inclusive).
    pub last: usize,
    /// Probability that the block is skipped.
    pub p_skip: f64,
}

/// An early-exit branch taken with probability `p_exit` once layer `after`
/// completes (BranchyNet / RAPID-RL style). Taking the exit completes the
/// inference successfully without running the remaining layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExitPoint {
    /// Index of the layer whose completion triggers the exit decision.
    pub after: usize,
    /// Probability that the inference exits here.
    pub p_exit: f64,
}

/// A single executable variant of a model: an ordered list of layers plus
/// the dynamic gates attached to them.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelGraph {
    name: &'static str,
    layers: Vec<Layer>,
    skip_blocks: Vec<SkipBlock>,
    exit_points: Vec<ExitPoint>,
}

impl ModelGraph {
    /// The variant's name (e.g. `"ofa-context/md"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The ordered layers of this variant.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the graph has no layers (never true for validated graphs).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Skip gates, ordered by `first`.
    pub fn skip_blocks(&self) -> &[SkipBlock] {
        &self.skip_blocks
    }

    /// Early-exit points, ordered by `after`.
    pub fn exit_points(&self) -> &[ExitPoint] {
        &self.exit_points
    }

    /// Total multiply-accumulate count assuming every layer executes
    /// (the worst-case path).
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.stats().macs).sum()
    }

    /// Total arithmetic work (MACs + vector ops) of the worst-case path.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(Layer::ops).sum()
    }

    /// Expected arithmetic work, weighting each layer by the probability it
    /// executes given the skip/exit gates.
    pub fn expected_ops(&self) -> f64 {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| self.execution_probability(i) * l.ops() as f64)
            .sum() // detlint: allow(float-fold) -- build-time load proxy over the fixed layer slice; dream-models sits below dream-sim, so canonical_sum is unavailable
    }

    /// Probability that layer `idx` executes, combining every skip block
    /// covering it and every exit point before it.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn execution_probability(&self, idx: usize) -> f64 {
        assert!(idx < self.layers.len(), "layer index out of bounds");
        let mut p = 1.0;
        for blk in &self.skip_blocks {
            if idx >= blk.first && idx <= blk.last {
                p *= 1.0 - blk.p_skip;
            }
        }
        for exit in &self.exit_points {
            if idx > exit.after {
                p *= 1.0 - exit.p_exit;
            }
        }
        p
    }

    /// Whether any gate (skip or exit) makes this variant's execution path
    /// input-dependent.
    pub fn is_dynamic(&self) -> bool {
        !self.skip_blocks.is_empty() || !self.exit_points.is_empty()
    }
}

/// Incremental builder for [`ModelGraph`]s, used throughout [`crate::zoo`].
#[derive(Debug)]
pub struct GraphBuilder {
    name: &'static str,
    layers: Vec<Layer>,
    skip_blocks: Vec<SkipBlock>,
    exit_points: Vec<ExitPoint>,
}

impl GraphBuilder {
    /// Starts a new graph with the given variant name.
    pub fn new(name: &'static str) -> Self {
        GraphBuilder {
            name,
            layers: Vec::new(),
            skip_blocks: Vec::new(),
            exit_points: Vec::new(),
        }
    }

    /// Appends a layer and returns its index.
    pub fn push(&mut self, layer: Layer) -> usize {
        self.layers.push(layer);
        self.layers.len() - 1
    }

    /// Appends several layers.
    pub fn extend<I: IntoIterator<Item = Layer>>(&mut self, layers: I) -> &mut Self {
        self.layers.extend(layers);
        self
    }

    /// Marks layers `first..=last` as a skip block with probability `p_skip`.
    pub fn skip_block(&mut self, first: usize, last: usize, p_skip: f64) -> &mut Self {
        self.skip_blocks.push(SkipBlock {
            first,
            last,
            p_skip,
        });
        self
    }

    /// Adds an early-exit point after layer `after`.
    pub fn exit_point(&mut self, after: usize, p_exit: f64) -> &mut Self {
        self.exit_points.push(ExitPoint { after, p_exit });
        self
    }

    /// Number of layers pushed so far (useful for gate bookkeeping).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether no layers have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Validates and finishes the graph.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyModel`] if no layers were added.
    /// * [`ModelError::InvalidGate`] if a gate references out-of-range
    ///   layers, a skip block starts at layer 0 (there would be no gate
    ///   layer to resolve it), skip blocks overlap, or probabilities fall
    ///   outside `[0, 1]`.
    pub fn build(mut self) -> Result<ModelGraph, ModelError> {
        if self.layers.is_empty() {
            return Err(ModelError::EmptyModel {
                name: self.name.to_string(),
            });
        }
        let n = self.layers.len();
        self.skip_blocks.sort_by_key(|b| b.first);
        self.exit_points.sort_by_key(|e| e.after);
        let mut prev_last: Option<usize> = None;
        for blk in &self.skip_blocks {
            if !(0.0..=1.0).contains(&blk.p_skip) {
                return Err(ModelError::InvalidProbability { value: blk.p_skip });
            }
            if blk.first == 0 {
                return Err(ModelError::InvalidGate {
                    reason: format!("graph `{}`: skip block may not start at layer 0", self.name),
                });
            }
            if blk.first > blk.last || blk.last >= n {
                return Err(ModelError::InvalidGate {
                    reason: format!(
                        "graph `{}`: skip block {}..={} out of range (len {})",
                        self.name, blk.first, blk.last, n
                    ),
                });
            }
            if let Some(p) = prev_last {
                if blk.first <= p {
                    return Err(ModelError::InvalidGate {
                        reason: format!(
                            "graph `{}`: skip blocks overlap at layer {}",
                            self.name, blk.first
                        ),
                    });
                }
            }
            prev_last = Some(blk.last);
        }
        for exit in &self.exit_points {
            if !(0.0..=1.0).contains(&exit.p_exit) {
                return Err(ModelError::InvalidProbability { value: exit.p_exit });
            }
            if exit.after + 1 >= n {
                return Err(ModelError::InvalidGate {
                    reason: format!(
                        "graph `{}`: exit after layer {} leaves no remaining layers",
                        self.name, exit.after
                    ),
                });
            }
        }
        Ok(ModelGraph {
            name: self.name,
            layers: self.layers,
            skip_blocks: self.skip_blocks,
            exit_points: self.exit_points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    fn ew(name: &'static str, elems: u64) -> Layer {
        Layer::new(name, LayerKind::Elementwise { elems }).unwrap()
    }

    fn three_layer_builder() -> GraphBuilder {
        let mut b = GraphBuilder::new("t");
        b.push(ew("a", 10));
        b.push(ew("b", 20));
        b.push(ew("c", 30));
        b
    }

    #[test]
    fn build_plain_graph() {
        let g = three_layer_builder().build().unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.total_ops(), 60);
        assert!(!g.is_dynamic());
        assert_eq!(g.expected_ops(), 60.0);
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(matches!(
            GraphBuilder::new("e").build(),
            Err(ModelError::EmptyModel { .. })
        ));
    }

    #[test]
    fn skip_block_probability_weighting() {
        let mut b = three_layer_builder();
        b.skip_block(1, 1, 0.5);
        let g = b.build().unwrap();
        assert!(g.is_dynamic());
        assert_eq!(g.execution_probability(0), 1.0);
        assert_eq!(g.execution_probability(1), 0.5);
        assert_eq!(g.execution_probability(2), 1.0);
        assert_eq!(g.expected_ops(), 10.0 + 10.0 + 30.0);
    }

    #[test]
    fn exit_point_probability_weighting() {
        let mut b = three_layer_builder();
        b.exit_point(0, 0.25);
        let g = b.build().unwrap();
        assert_eq!(g.execution_probability(0), 1.0);
        assert_eq!(g.execution_probability(1), 0.75);
        assert_eq!(g.execution_probability(2), 0.75);
    }

    #[test]
    fn stacked_gates_multiply() {
        let mut b = three_layer_builder();
        b.exit_point(0, 0.5).skip_block(2, 2, 0.5);
        let g = b.build().unwrap();
        assert_eq!(g.execution_probability(2), 0.25);
    }

    #[test]
    fn skip_block_at_layer_zero_rejected() {
        let mut b = three_layer_builder();
        b.skip_block(0, 1, 0.5);
        assert!(matches!(b.build(), Err(ModelError::InvalidGate { .. })));
    }

    #[test]
    fn out_of_range_gate_rejected() {
        let mut b = three_layer_builder();
        b.skip_block(1, 5, 0.5);
        assert!(b.build().is_err());

        let mut b = three_layer_builder();
        b.exit_point(2, 0.5); // no layers after the exit
        assert!(b.build().is_err());
    }

    #[test]
    fn overlapping_skip_blocks_rejected() {
        let mut b = three_layer_builder();
        b.skip_block(1, 2, 0.5).skip_block(2, 2, 0.5);
        assert!(matches!(b.build(), Err(ModelError::InvalidGate { .. })));
    }

    #[test]
    fn bad_probability_rejected() {
        let mut b = three_layer_builder();
        b.skip_block(1, 1, 1.5);
        assert!(matches!(
            b.build(),
            Err(ModelError::InvalidProbability { .. })
        ));
    }
}
