use crate::ModelError;

/// The arithmetic shape of a single network layer.
///
/// Shapes carry exactly the information the cost model needs: multiply-
/// accumulate counts, operand footprints, and the spatial structure that a
/// dataflow mapper uses to decide PE-array utilisation. Activation and
/// weight elements are assumed to be 8-bit unless [`Layer::bytes_per_elem`]
/// says otherwise (GNMT uses 16-bit operands, matching common practice for
/// RNN serving).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A 2-D convolution (grouped convolutions cover depthwise layers).
    Conv2d {
        /// Input feature-map height.
        in_h: u32,
        /// Input feature-map width.
        in_w: u32,
        /// Input channels.
        in_c: u32,
        /// Output channels.
        out_c: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride (same padding is assumed).
        stride: u32,
        /// Group count; `groups == in_c` describes a depthwise convolution.
        groups: u32,
    },
    /// A dense matrix multiply: `[m × k] · [k × n]`. Fully-connected layers
    /// are `m = 1`; LSTM gate computations are folded into GEMMs.
    Gemm {
        /// Rows of the activation matrix (batch / sequence dimension).
        m: u32,
        /// Output features.
        n: u32,
        /// Reduction dimension.
        k: u32,
    },
    /// A pooling layer (max or average — the cost model does not care).
    Pool {
        /// Input feature-map height.
        in_h: u32,
        /// Input feature-map width.
        in_w: u32,
        /// Channels.
        c: u32,
        /// Square pooling window.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// Element-wise work (residual adds, activations that are not folded,
    /// concatenations, softmax, …) over `elems` elements.
    Elementwise {
        /// Number of elements read, combined, and written.
        elems: u64,
    },
}

/// Derived, cost-model-facing statistics of a layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerStats {
    /// Multiply-accumulate operations (0 for pooling / element-wise; those
    /// report their work through `vector_ops`).
    pub macs: u64,
    /// Non-MAC vector operations (pooling comparisons, element-wise adds).
    pub vector_ops: u64,
    /// Bytes of weights the layer reads.
    pub weight_bytes: u64,
    /// Bytes of input activations.
    pub input_bytes: u64,
    /// Bytes of output activations.
    pub output_bytes: u64,
    /// Output spatial positions × channels (dataflow mapping input).
    pub out_elems: u64,
    /// Weight-footprint parallelism available to a weight-stationary array:
    /// `(in_c / groups) · k² · out_c` for convolutions, `k · n` tiles for
    /// GEMMs (capped by the actual weight count).
    pub ws_parallel_work: u64,
    /// Reduction length per output element (temporal depth for an
    /// output-stationary array).
    pub reduction_depth: u64,
    /// Sliding-window size (k² for convolutions and pools, 1 otherwise);
    /// governs input re-reads in the SRAM traffic model.
    pub kernel_area: u64,
}

/// A named layer of a network.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layer {
    name: &'static str,
    kind: LayerKind,
    bytes_per_elem: u32,
}

impl Layer {
    /// Creates a layer with 8-bit operands.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidLayer`] if any dimension is zero, the
    /// stride is zero, or the group count does not divide the channel counts.
    pub fn new(name: &'static str, kind: LayerKind) -> Result<Self, ModelError> {
        Self::with_bytes(name, kind, 1)
    }

    /// Creates a layer with explicit operand width in bytes (1 = int8,
    /// 2 = fp16, 4 = fp32).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidLayer`] under the same conditions as
    /// [`Layer::new`], or if `bytes_per_elem` is zero.
    pub fn with_bytes(
        name: &'static str,
        kind: LayerKind,
        bytes_per_elem: u32,
    ) -> Result<Self, ModelError> {
        if bytes_per_elem == 0 {
            return Err(ModelError::InvalidLayer {
                reason: format!("layer `{name}`: bytes_per_elem must be positive"),
            });
        }
        let bad = |reason: String| Err(ModelError::InvalidLayer { reason });
        match kind {
            LayerKind::Conv2d {
                in_h,
                in_w,
                in_c,
                out_c,
                kernel,
                stride,
                groups,
            } => {
                if in_h == 0 || in_w == 0 || in_c == 0 || out_c == 0 || kernel == 0 || stride == 0 {
                    return bad(format!("layer `{name}`: conv dimensions must be positive"));
                }
                if groups == 0 || in_c % groups != 0 || out_c % groups != 0 {
                    return bad(format!(
                        "layer `{name}`: groups ({groups}) must divide in_c ({in_c}) and out_c ({out_c})"
                    ));
                }
            }
            LayerKind::Gemm { m, n, k } => {
                if m == 0 || n == 0 || k == 0 {
                    return bad(format!("layer `{name}`: GEMM dimensions must be positive"));
                }
            }
            LayerKind::Pool {
                in_h,
                in_w,
                c,
                kernel,
                stride,
            } => {
                if in_h == 0 || in_w == 0 || c == 0 || kernel == 0 || stride == 0 {
                    return bad(format!("layer `{name}`: pool dimensions must be positive"));
                }
            }
            LayerKind::Elementwise { elems } => {
                if elems == 0 {
                    return bad(format!(
                        "layer `{name}`: element-wise size must be positive"
                    ));
                }
            }
        }
        Ok(Layer {
            name,
            kind,
            bytes_per_elem,
        })
    }

    /// The layer's name (unique within its graph by convention, not enforced).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The layer's arithmetic shape.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Operand width in bytes.
    pub fn bytes_per_elem(&self) -> u32 {
        self.bytes_per_elem
    }

    /// Output spatial height/width for convolutions and pools under same
    /// padding: `ceil(in / stride)`.
    fn out_dim(in_dim: u32, stride: u32) -> u32 {
        in_dim.div_ceil(stride)
    }

    /// Computes the derived statistics used by the cost model.
    pub fn stats(&self) -> LayerStats {
        let b = u64::from(self.bytes_per_elem);
        match self.kind {
            LayerKind::Conv2d {
                in_h,
                in_w,
                in_c,
                out_c,
                kernel,
                stride,
                groups,
            } => {
                let out_h = u64::from(Self::out_dim(in_h, stride));
                let out_w = u64::from(Self::out_dim(in_w, stride));
                let in_c_g = u64::from(in_c / groups);
                let k2 = u64::from(kernel) * u64::from(kernel);
                let out_elems = out_h * out_w * u64::from(out_c);
                let macs = out_elems * in_c_g * k2;
                let weight_elems = u64::from(out_c) * in_c_g * k2;
                LayerStats {
                    macs,
                    vector_ops: 0,
                    weight_bytes: weight_elems * b,
                    input_bytes: u64::from(in_h) * u64::from(in_w) * u64::from(in_c) * b,
                    output_bytes: out_elems * b,
                    out_elems,
                    ws_parallel_work: in_c_g * k2 * u64::from(out_c),
                    reduction_depth: in_c_g * k2,
                    kernel_area: k2,
                }
            }
            LayerKind::Gemm { m, n, k } => {
                let (m, n, k) = (u64::from(m), u64::from(n), u64::from(k));
                LayerStats {
                    macs: m * n * k,
                    vector_ops: 0,
                    weight_bytes: k * n * b,
                    input_bytes: m * k * b,
                    output_bytes: m * n * b,
                    out_elems: m * n,
                    ws_parallel_work: k * n,
                    reduction_depth: k,
                    kernel_area: 1,
                }
            }
            LayerKind::Pool {
                in_h,
                in_w,
                c,
                kernel,
                stride,
            } => {
                let out_h = u64::from(Self::out_dim(in_h, stride));
                let out_w = u64::from(Self::out_dim(in_w, stride));
                let out_elems = out_h * out_w * u64::from(c);
                let k2 = u64::from(kernel) * u64::from(kernel);
                LayerStats {
                    macs: 0,
                    vector_ops: out_elems * k2,
                    weight_bytes: 0,
                    input_bytes: u64::from(in_h) * u64::from(in_w) * u64::from(c) * b,
                    output_bytes: out_elems * b,
                    out_elems,
                    ws_parallel_work: out_elems.min(4096),
                    reduction_depth: k2,
                    kernel_area: k2,
                }
            }
            LayerKind::Elementwise { elems } => LayerStats {
                macs: 0,
                vector_ops: elems,
                weight_bytes: 0,
                input_bytes: elems * b,
                output_bytes: elems * b,
                out_elems: elems,
                ws_parallel_work: elems.min(4096),
                reduction_depth: 1,
                kernel_area: 1,
            },
        }
    }

    /// Total arithmetic work (MACs + vector ops), a convenient load proxy.
    pub fn ops(&self) -> u64 {
        let s = self.stats();
        s.macs + s.vector_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(
        in_h: u32,
        in_w: u32,
        in_c: u32,
        out_c: u32,
        kernel: u32,
        stride: u32,
        groups: u32,
    ) -> LayerKind {
        LayerKind::Conv2d {
            in_h,
            in_w,
            in_c,
            out_c,
            kernel,
            stride,
            groups,
        }
    }

    #[test]
    fn conv_macs_match_hand_computation() {
        // 56x56x64 -> 56x56x128, 3x3 s1: 56*56*128 * 64*9 MACs.
        let layer = Layer::new("c", conv(56, 56, 64, 128, 3, 1, 1)).unwrap();
        let s = layer.stats();
        assert_eq!(s.macs, 56 * 56 * 128 * 64 * 9);
        assert_eq!(s.weight_bytes, 128 * 64 * 9);
        assert_eq!(s.out_elems, 56 * 56 * 128);
        assert_eq!(s.reduction_depth, 64 * 9);
    }

    #[test]
    fn depthwise_conv_reduces_macs_by_channel_count() {
        let dense = Layer::new("d", conv(28, 28, 96, 96, 3, 1, 1)).unwrap();
        let dw = Layer::new("dw", conv(28, 28, 96, 96, 3, 1, 96)).unwrap();
        assert_eq!(dense.stats().macs, dw.stats().macs * 96);
        // Depthwise weight-stationary parallelism collapses to k²·out_c.
        assert_eq!(dw.stats().ws_parallel_work, 9 * 96);
    }

    #[test]
    fn strided_conv_uses_same_padding_output() {
        let layer = Layer::new("s", conv(225, 225, 3, 32, 3, 2, 1)).unwrap();
        // ceil(225/2) = 113.
        assert_eq!(layer.stats().out_elems, 113 * 113 * 32);
    }

    #[test]
    fn gemm_stats() {
        let layer = Layer::with_bytes(
            "g",
            LayerKind::Gemm {
                m: 10,
                n: 4096,
                k: 2048,
            },
            2,
        )
        .unwrap();
        let s = layer.stats();
        assert_eq!(s.macs, 10 * 4096 * 2048);
        assert_eq!(s.weight_bytes, 4096 * 2048 * 2);
        assert_eq!(s.input_bytes, 10 * 2048 * 2);
        assert_eq!(s.output_bytes, 10 * 4096 * 2);
    }

    #[test]
    fn pool_has_no_macs_but_vector_ops() {
        let layer = Layer::new(
            "p",
            LayerKind::Pool {
                in_h: 56,
                in_w: 56,
                c: 64,
                kernel: 2,
                stride: 2,
            },
        )
        .unwrap();
        let s = layer.stats();
        assert_eq!(s.macs, 0);
        assert_eq!(s.vector_ops, 28 * 28 * 64 * 4);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(Layer::new("bad", conv(0, 56, 64, 128, 3, 1, 1)).is_err());
        assert!(Layer::new("bad", LayerKind::Gemm { m: 0, n: 1, k: 1 }).is_err());
        assert!(Layer::new("bad", LayerKind::Elementwise { elems: 0 }).is_err());
    }

    #[test]
    fn bad_groups_rejected() {
        assert!(Layer::new("bad", conv(56, 56, 64, 128, 3, 1, 7)).is_err());
        assert!(Layer::new("bad", conv(56, 56, 64, 128, 3, 1, 0)).is_err());
    }

    #[test]
    fn zero_byte_width_rejected() {
        assert!(Layer::with_bytes("bad", LayerKind::Elementwise { elems: 8 }, 0).is_err());
    }

    #[test]
    fn ops_sums_macs_and_vector_ops() {
        let layer = Layer::new("e", LayerKind::Elementwise { elems: 42 }).unwrap();
        assert_eq!(layer.ops(), 42);
    }
}
