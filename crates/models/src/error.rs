use std::error::Error;
use std::fmt;

/// Errors produced while constructing models, graphs, or scenarios.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A layer parameter was zero or otherwise degenerate.
    InvalidLayer {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A gate (skip block / exit point) references layers outside the graph,
    /// overlaps another gate, or carries an out-of-range probability.
    InvalidGate {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A probability was outside `[0, 1]`.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
    /// A frame rate was zero or non-finite.
    InvalidRate {
        /// The rejected value in frames per second.
        fps: f64,
    },
    /// A pipeline node referenced a parent that does not exist or would form
    /// a cycle.
    InvalidDependency {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A model was declared with no variants or with an empty variant.
    EmptyModel {
        /// The model name.
        name: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidLayer { reason } => write!(f, "invalid layer: {reason}"),
            ModelError::InvalidGate { reason } => write!(f, "invalid gate: {reason}"),
            ModelError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            ModelError::InvalidRate { fps } => write!(f, "invalid frame rate {fps} fps"),
            ModelError::InvalidDependency { reason } => {
                write!(f, "invalid pipeline dependency: {reason}")
            }
            ModelError::EmptyModel { name } => write!(f, "model `{name}` has no layers"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            ModelError::InvalidLayer {
                reason: "zero channels".into(),
            },
            ModelError::InvalidGate {
                reason: "overlap".into(),
            },
            ModelError::InvalidProbability { value: 1.5 },
            ModelError::InvalidRate { fps: 0.0 },
            ModelError::InvalidDependency {
                reason: "cycle".into(),
            },
            ModelError::EmptyModel {
                name: "GNMT".into(),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("probability"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
