use crate::{ModelError, ModelGraph};

/// Index of a variant within a [`Model`]. Variant 0 is always the
/// heaviest / default subnetwork ("Original" in the paper's Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VariantId(pub usize);

impl std::fmt::Display for VariantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A deployable network: one or more executable variants.
///
/// Ordinary networks have exactly one variant. Weight-sharing supernets
/// (Once-for-All style) expose several, ordered heaviest-first, and DREAM's
/// supernet-switching optimisation may select a lighter variant per
/// inference when the system is overloaded.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: &'static str,
    variants: Vec<ModelGraph>,
}

impl Model {
    /// Wraps a single-variant network.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyModel`] if the graph has no layers
    /// (already prevented by [`crate::GraphBuilder::build`], re-checked for
    /// defence in depth).
    pub fn single(name: &'static str, graph: ModelGraph) -> Result<Self, ModelError> {
        Self::supernet(name, vec![graph])
    }

    /// Wraps a supernet with the given variants, heaviest first.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyModel`] if `variants` is empty or any
    /// variant has no layers.
    pub fn supernet(name: &'static str, variants: Vec<ModelGraph>) -> Result<Self, ModelError> {
        if variants.is_empty() || variants.iter().any(ModelGraph::is_empty) {
            return Err(ModelError::EmptyModel {
                name: name.to_string(),
            });
        }
        Ok(Model { name, variants })
    }

    /// The model's name as used in the paper's Table 3 (e.g. `"GNMT"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// All variants, heaviest first.
    pub fn variants(&self) -> &[ModelGraph] {
        &self.variants
    }

    /// The default (heaviest) variant.
    pub fn default_variant(&self) -> &ModelGraph {
        &self.variants[0]
    }

    /// Looks up a variant.
    pub fn variant(&self, id: VariantId) -> Option<&ModelGraph> {
        self.variants.get(id.0)
    }

    /// Whether this model is a multi-variant supernet.
    pub fn is_supernet(&self) -> bool {
        self.variants.len() > 1
    }

    /// Number of variants.
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// Worst-case MACs of the default variant.
    pub fn total_macs(&self) -> u64 {
        self.default_variant().total_macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Layer, LayerKind};

    fn graph(name: &'static str, elems: u64) -> ModelGraph {
        let mut b = GraphBuilder::new(name);
        b.push(Layer::new("l", LayerKind::Elementwise { elems }).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn single_variant_model() {
        let m = Model::single("m", graph("m", 10)).unwrap();
        assert!(!m.is_supernet());
        assert_eq!(m.variant_count(), 1);
        assert_eq!(m.default_variant().total_ops(), 10);
        assert_eq!(m.variant(VariantId(0)).unwrap().name(), "m");
        assert!(m.variant(VariantId(1)).is_none());
    }

    #[test]
    fn supernet_orders_heaviest_first_by_convention() {
        let m = Model::supernet("s", vec![graph("hv", 100), graph("lt", 10)]).unwrap();
        assert!(m.is_supernet());
        assert_eq!(m.default_variant().name(), "hv");
        assert_eq!(m.variant(VariantId(1)).unwrap().name(), "lt");
    }

    #[test]
    fn empty_variant_list_rejected() {
        assert!(Model::supernet("s", vec![]).is_err());
    }

    #[test]
    fn variant_id_display() {
        assert_eq!(VariantId(2).to_string(), "v2");
    }
}
