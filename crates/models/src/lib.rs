//! Layer-level model zoo and workload scenarios for the DREAM reproduction.
//!
//! The DREAM scheduler never inspects model *weights* — only layer shapes
//! (which determine per-accelerator latency and energy) and the control
//! structure of each network (which determines the dynamicity the scheduler
//! must cope with). This crate therefore describes every network used in the
//! paper's evaluation as a sequence of [`Layer`]s plus dynamic *gates*:
//!
//! * [`SkipBlock`] — a span of layers that is skipped with some probability
//!   once the gate layer completes (SkipNet-style operator dynamicity);
//! * [`ExitPoint`] — an early-exit branch taken with some probability
//!   (BranchyNet / RAPID-RL style);
//! * supernet *variants* — alternative subnetworks of a weight-sharing
//!   supernet (Once-for-All style), selectable per inference.
//!
//! On top of the zoo ([`zoo`]) the crate defines the paper's five evaluation
//! scenarios (Table 3) as [`Scenario`]s: sets of concurrent ML pipelines with
//! per-model FPS targets and control/data cascade dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod layer;
mod model;
mod pipeline;
mod scenario;
pub mod zoo;

pub use error::ModelError;
pub use graph::{ExitPoint, GraphBuilder, ModelGraph, SkipBlock};
pub use layer::{Layer, LayerKind, LayerStats};
pub use model::{Model, VariantId};
pub use pipeline::{CascadeProbability, ModelNode, NodeId, PipelineId, PipelineSpec, Rate};
pub use scenario::{all_default_scenarios, Scenario, ScenarioKind};
