use crate::zoo;
use crate::{CascadeProbability, ModelError, ModelNode, NodeId, PipelineSpec, Rate};

/// The five RTMM workload scenarios of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScenarioKind {
    /// VR gaming: eye + hand + context + audio pipelines (XRBench-derived).
    VrGaming,
    /// AR call: audio pipeline plus SkipNet visual context (XRBench-derived).
    ArCall,
    /// Outdoor drone flight (TrailMAV-derived).
    DroneOutdoor,
    /// Indoor drone flight with parking enforcement (TrailMAV-derived).
    DroneIndoor,
    /// AR social interaction: depth, action, face, and context pipelines.
    ArSocial,
}

impl ScenarioKind {
    /// All five scenarios, in the paper's presentation order.
    pub fn all() -> [ScenarioKind; 5] {
        [
            ScenarioKind::VrGaming,
            ScenarioKind::ArCall,
            ScenarioKind::DroneOutdoor,
            ScenarioKind::DroneIndoor,
            ScenarioKind::ArSocial,
        ]
    }

    /// The scenario's name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::VrGaming => "VR_Gaming",
            ScenarioKind::ArCall => "AR_Call",
            ScenarioKind::DroneOutdoor => "Drone_Outdoor",
            ScenarioKind::DroneIndoor => "Drone_Indoor",
            ScenarioKind::ArSocial => "AR_Social",
        }
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete RTMM workload: a named set of concurrent ML pipelines.
#[derive(Debug, Clone)]
pub struct Scenario {
    kind: ScenarioKind,
    pipelines: Vec<PipelineSpec>,
}

impl Scenario {
    /// Builds the scenario for `kind` with the given cascade probability on
    /// every control-dependent edge (the paper's default is 0.5; Figure 12
    /// sweeps it to 0.99).
    pub fn new(kind: ScenarioKind, cascade: CascadeProbability) -> Self {
        match kind {
            ScenarioKind::VrGaming => Self::vr_gaming(cascade),
            ScenarioKind::ArCall => Self::ar_call(cascade),
            ScenarioKind::DroneOutdoor => Self::drone_outdoor(),
            ScenarioKind::DroneIndoor => Self::drone_indoor(),
            ScenarioKind::ArSocial => Self::ar_social(cascade),
        }
    }

    /// VR_Gaming: gaze (60), hand detection (30) → pose (30), OFA context
    /// (30), keyword spotting (15) → GNMT (15).
    pub fn vr_gaming(cascade: CascadeProbability) -> Self {
        let pipelines = vec![
            pipeline1("eye", zoo::fbnet_c(), 60.0),
            pipeline_chain(
                "hand",
                zoo::ssd_mobilenet_v2("HandDetection"),
                30.0,
                zoo::hand_pose_net(),
                30.0,
                cascade,
            ),
            pipeline1("context", zoo::ofa_context(), 30.0),
            pipeline_chain("audio", zoo::kws_res8(), 15.0, zoo::gnmt(), 15.0, cascade),
        ];
        Scenario {
            kind: ScenarioKind::VrGaming,
            pipelines,
        }
    }

    /// AR_Call: keyword spotting (15) → GNMT (15), SkipNet context (30).
    pub fn ar_call(cascade: CascadeProbability) -> Self {
        let pipelines = vec![
            pipeline_chain("audio", zoo::kws_res8(), 15.0, zoo::gnmt(), 15.0, cascade),
            pipeline1("context", zoo::skipnet(), 30.0),
        ];
        Scenario {
            kind: ScenarioKind::ArCall,
            pipelines,
        }
    }

    /// Drone_Outdoor: object detection (30), TrailNet navigation (60),
    /// SOSNet visual odometry (60). No control-dependent cascades.
    pub fn drone_outdoor() -> Self {
        let pipelines = vec![
            pipeline1("detect", zoo::ssd_mobilenet_v2("ObjectDetection"), 30.0),
            pipeline1("navigate", zoo::trailnet(), 60.0),
            pipeline1("odometry", zoo::sosnet(), 60.0),
        ];
        Scenario {
            kind: ScenarioKind::DroneOutdoor,
            pipelines,
        }
    }

    /// Drone_Indoor: object detection (30), RAPID-RL navigation (60),
    /// SOSNet obstacle detection (60), GoogLeNet-car classification (60).
    pub fn drone_indoor() -> Self {
        let pipelines = vec![
            pipeline1("detect", zoo::ssd_mobilenet_v2("ObjectDetection"), 30.0),
            pipeline1("navigate", zoo::rapid_rl(), 60.0),
            pipeline1("obstacle", zoo::sosnet(), 60.0),
            pipeline1("parking", zoo::googlenet_car(), 60.0),
        ];
        Scenario {
            kind: ScenarioKind::DroneIndoor,
            pipelines,
        }
    }

    /// AR_Social: depth (30), action segmentation (30), face detection (30)
    /// → face verification (30), OFA context (30).
    pub fn ar_social(cascade: CascadeProbability) -> Self {
        let pipelines = vec![
            pipeline1("depth", zoo::focal_length_depth(), 30.0),
            pipeline1("action", zoo::ed_tcn(), 30.0),
            pipeline_chain(
                "face",
                zoo::ssd_mobilenet_v2("FaceDetection"),
                30.0,
                zoo::vgg_voxceleb(),
                30.0,
                cascade,
            ),
            pipeline1("context", zoo::ofa_context(), 30.0),
        ];
        Scenario {
            kind: ScenarioKind::ArSocial,
            pipelines,
        }
    }

    /// Which scenario this is.
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// The scenario's name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// The concurrent pipelines.
    pub fn pipelines(&self) -> &[PipelineSpec] {
        &self.pipelines
    }

    /// Total number of model nodes across all pipelines.
    pub fn node_count(&self) -> usize {
        self.pipelines.iter().map(|p| p.nodes().len()).sum()
    }

    /// Expected steady-state arithmetic demand in ops/second: each node's
    /// expected per-inference work × its rate × the probability its cascade
    /// chain fires. A coarse load proxy used for calibration and tests.
    // detlint: canonical-fold -- build-time load proxy folding in fixed pipeline/node order; dream-models sits below dream-sim, so canonical_sum is unavailable
    pub fn expected_ops_per_second(&self) -> f64 {
        let mut total = 0.0;
        for p in &self.pipelines {
            for (id, node) in p.nodes().iter().enumerate() {
                let mut launch_p = 1.0;
                let mut cur = node;
                loop {
                    if let Some(c) = cur.cascade {
                        launch_p *= c.value();
                    }
                    match cur.parent {
                        Some(pid) => cur = &p.nodes()[pid.0],
                        None => break,
                    }
                }
                let _ = id;
                total +=
                    node.model.default_variant().expected_ops() * node.rate.as_fps() * launch_p;
            }
        }
        total
    }

    /// The names of every distinct model in the scenario (deduplicated, in
    /// pipeline order) — the "inference model list" DREAM's adaptivity
    /// engine tracks to detect workload changes.
    pub fn model_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for p in &self.pipelines {
            for n in p.nodes() {
                if !names.contains(&n.model.name()) {
                    names.push(n.model.name());
                }
            }
        }
        names
    }
}

fn pipeline1(name: &'static str, model: crate::Model, fps: f64) -> PipelineSpec {
    PipelineSpec::new(
        name,
        vec![ModelNode {
            model,
            rate: rate(fps),
            parent: None,
            cascade: None,
        }],
    )
    .expect("single-node pipeline is valid")
}

fn pipeline_chain(
    name: &'static str,
    parent: crate::Model,
    parent_fps: f64,
    child: crate::Model,
    child_fps: f64,
    cascade: CascadeProbability,
) -> PipelineSpec {
    PipelineSpec::new(
        name,
        vec![
            ModelNode {
                model: parent,
                rate: rate(parent_fps),
                parent: None,
                cascade: None,
            },
            ModelNode {
                model: child,
                rate: rate(child_fps),
                parent: Some(NodeId(0)),
                cascade: Some(cascade),
            },
        ],
    )
    .expect("two-node cascade pipeline is valid")
}

fn rate(fps: f64) -> Rate {
    Rate::fps(fps).expect("scenario frame rates are valid")
}

/// Convenience: all five scenarios at the paper's default 50% cascade
/// probability.
///
/// # Errors
///
/// Propagates [`ModelError`] from probability construction (infallible for
/// the constant used here, but kept for API uniformity).
pub fn all_default_scenarios() -> Result<Vec<Scenario>, ModelError> {
    let p = CascadeProbability::new(0.5)?;
    Ok(ScenarioKind::all()
        .into_iter()
        .map(|k| Scenario::new(k, p))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p50() -> CascadeProbability {
        CascadeProbability::new(0.5).unwrap()
    }

    #[test]
    fn table3_scenario_inventory() {
        let s = Scenario::vr_gaming(p50());
        assert_eq!(s.node_count(), 6);
        assert_eq!(s.pipelines().len(), 4);

        let s = Scenario::ar_call(p50());
        assert_eq!(s.node_count(), 3);

        let s = Scenario::drone_outdoor();
        assert_eq!(s.node_count(), 3);

        let s = Scenario::drone_indoor();
        assert_eq!(s.node_count(), 4);

        let s = Scenario::ar_social(p50());
        assert_eq!(s.node_count(), 5);
    }

    #[test]
    fn cascade_edges_fire_where_table3_says() {
        let s = Scenario::vr_gaming(p50());
        // hand pipeline: detection → pose.
        let hand = &s.pipelines()[1];
        assert!(hand.nodes()[1].parent.is_some());
        assert_eq!(hand.nodes()[1].cascade.unwrap().value(), 0.5);
        // audio pipeline: KWS → GNMT.
        let audio = &s.pipelines()[3];
        assert_eq!(audio.nodes()[0].model.name(), "KWS_res8");
        assert_eq!(audio.nodes()[1].model.name(), "GNMT");
    }

    #[test]
    fn fps_targets_match_table3() {
        let s = Scenario::vr_gaming(p50());
        let eye = &s.pipelines()[0].nodes()[0];
        assert_eq!(eye.rate.as_fps(), 60.0);
        let audio = &s.pipelines()[3];
        assert_eq!(audio.nodes()[0].rate.as_fps(), 15.0);
        assert_eq!(audio.nodes()[1].rate.as_fps(), 15.0);
    }

    #[test]
    fn cascade_probability_scales_expected_load() {
        let lo = Scenario::vr_gaming(CascadeProbability::new(0.1).unwrap());
        let hi = Scenario::vr_gaming(CascadeProbability::new(0.9).unwrap());
        assert!(hi.expected_ops_per_second() > lo.expected_ops_per_second());
    }

    #[test]
    fn drone_indoor_is_heavier_than_ar_call() {
        let indoor = Scenario::drone_indoor();
        let call = Scenario::ar_call(p50());
        assert!(indoor.expected_ops_per_second() > call.expected_ops_per_second());
    }

    #[test]
    fn model_names_are_deduplicated() {
        let s = Scenario::ar_social(p50());
        let names = s.model_names();
        assert!(names.contains(&"FocalLengthDepth"));
        assert!(names.contains(&"Once-for-All"));
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn all_default_scenarios_builds_five() {
        assert_eq!(all_default_scenarios().unwrap().len(), 5);
    }

    #[test]
    fn scenario_kind_round_trip_names() {
        for k in ScenarioKind::all() {
            assert!(!k.name().is_empty());
            assert_eq!(k.to_string(), k.name());
        }
    }
}
