use crate::{Model, ModelError};

/// Identifier of a pipeline within a [`crate::Scenario`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipelineId(pub usize);

/// Identifier of a model node within a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// A validated frame rate (frames per second).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Rate(f64);

impl Rate {
    /// Creates a rate.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRate`] if `fps` is not finite and
    /// positive.
    pub fn fps(fps: f64) -> Result<Self, ModelError> {
        if !fps.is_finite() || fps <= 0.0 {
            return Err(ModelError::InvalidRate { fps });
        }
        Ok(Rate(fps))
    }

    /// Frames per second.
    pub fn as_fps(self) -> f64 {
        self.0
    }

    /// The frame period in nanoseconds, rounded to the nearest integer.
    pub fn period_ns(self) -> u64 {
        (1.0e9 / self.0).round() as u64
    }
}

impl std::fmt::Display for Rate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} FPS", self.0)
    }
}

/// A validated probability that a control-dependent cascade edge fires.
///
/// The paper activates dependent models with 50% probability by default and
/// sweeps this knob up to 99% in Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct CascadeProbability(f64);

impl CascadeProbability {
    /// Creates a cascade probability.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidProbability`] if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(ModelError::InvalidProbability { value: p });
        }
        Ok(CascadeProbability(p))
    }

    /// The paper's default of 0.5.
    pub fn default_paper() -> Self {
        CascadeProbability(0.5)
    }

    /// The raw probability.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Default for CascadeProbability {
    fn default() -> Self {
        Self::default_paper()
    }
}

/// One model within a pipeline, together with its real-time contract and its
/// position in the dependency chain.
#[derive(Debug, Clone)]
pub struct ModelNode {
    /// The network this node runs.
    pub model: Model,
    /// Target frame rate. For root nodes this drives periodic frame
    /// arrivals; every node's deadline is one period after its frame's
    /// arrival.
    pub rate: Rate,
    /// Parent node in the cascade, if any. A node with a parent is released
    /// only when the parent's inference for the same frame completes *and*
    /// the control dependency fires.
    pub parent: Option<NodeId>,
    /// Probability that the parent's result launches this node
    /// (`None` ⇒ unconditional data dependency, probability 1).
    pub cascade: Option<CascadeProbability>,
}

/// A pipeline: a chain (tree) of model nodes with cascade dependencies.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    name: &'static str,
    nodes: Vec<ModelNode>,
}

impl PipelineSpec {
    /// Builds a pipeline, validating the dependency structure.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDependency`] if a node references a
    /// parent at or after itself (parents must precede children, which also
    /// rules out cycles) or if the pipeline is empty.
    pub fn new(name: &'static str, nodes: Vec<ModelNode>) -> Result<Self, ModelError> {
        if nodes.is_empty() {
            return Err(ModelError::InvalidDependency {
                reason: format!("pipeline `{name}` has no nodes"),
            });
        }
        for (i, node) in nodes.iter().enumerate() {
            if let Some(NodeId(p)) = node.parent {
                if p >= i {
                    return Err(ModelError::InvalidDependency {
                        reason: format!(
                            "pipeline `{name}`: node {i} ({}) references parent {p} which does not precede it",
                            node.model.name()
                        ),
                    });
                }
            }
        }
        Ok(PipelineSpec { name, nodes })
    }

    /// The pipeline's name (e.g. `"hand"`, `"audio"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// All nodes, parents before children.
    pub fn nodes(&self) -> &[ModelNode] {
        &self.nodes
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&ModelNode> {
        self.nodes.get(id.0)
    }

    /// Children of `id` (nodes whose `parent == Some(id)`).
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = (NodeId, &ModelNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.parent == Some(id))
            .map(|(i, n)| (NodeId(i), n))
    }

    /// Whether `id` is a leaf of the dependency chain (no other node depends
    /// on it) — the only nodes DREAM's frame-drop Condition 3 may drop.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children(id).next().is_none()
    }

    /// Root nodes (no parent); these receive periodic frame arrivals.
    pub fn roots(&self) -> impl Iterator<Item = (NodeId, &ModelNode)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, n)| (NodeId(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Layer, LayerKind};

    fn tiny_model(name: &'static str) -> Model {
        let mut b = GraphBuilder::new(name);
        b.push(Layer::new("l", LayerKind::Elementwise { elems: 8 }).unwrap());
        Model::single(name, b.build().unwrap()).unwrap()
    }

    fn node(name: &'static str, fps: f64, parent: Option<usize>) -> ModelNode {
        ModelNode {
            model: tiny_model(name),
            rate: Rate::fps(fps).unwrap(),
            parent: parent.map(NodeId),
            cascade: parent.map(|_| CascadeProbability::default_paper()),
        }
    }

    #[test]
    fn rate_validation() {
        assert!(Rate::fps(30.0).is_ok());
        assert!(Rate::fps(0.0).is_err());
        assert!(Rate::fps(-1.0).is_err());
        assert!(Rate::fps(f64::NAN).is_err());
        assert_eq!(Rate::fps(30.0).unwrap().period_ns(), 33_333_333);
    }

    #[test]
    fn cascade_probability_validation() {
        assert!(CascadeProbability::new(0.5).is_ok());
        assert!(CascadeProbability::new(1.0).is_ok());
        assert!(CascadeProbability::new(1.01).is_err());
        assert!(CascadeProbability::new(f64::NAN).is_err());
        assert_eq!(CascadeProbability::default().value(), 0.5);
    }

    #[test]
    fn chain_structure_queries() {
        let p = PipelineSpec::new(
            "hand",
            vec![node("det", 30.0, None), node("pose", 30.0, Some(0))],
        )
        .unwrap();
        assert_eq!(p.roots().count(), 1);
        assert!(!p.is_leaf(NodeId(0)));
        assert!(p.is_leaf(NodeId(1)));
        assert_eq!(p.children(NodeId(0)).count(), 1);
        assert_eq!(p.node(NodeId(1)).unwrap().model.name(), "pose");
    }

    #[test]
    fn forward_parent_reference_rejected() {
        let bad = PipelineSpec::new("bad", vec![node("a", 30.0, Some(0)), node("b", 30.0, None)]);
        assert!(matches!(bad, Err(ModelError::InvalidDependency { .. })));
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert!(PipelineSpec::new("e", vec![]).is_err());
    }
}
