//! The model zoo: layer-level descriptions of every network in the paper's
//! Table 3.
//!
//! Shapes follow the cited architectures; where a publication leaves a free
//! parameter (input resolution, sequence length, patch count) we choose a
//! value that matches the published FLOP count to first order and note the
//! choice in the builder's documentation. Each builder returns a fully
//! validated [`Model`](crate::Model).
//!
//! | Builder | Network | Role (scenario) | FPS |
//! |---|---|---|---|
//! | [`fbnet_c`] | FBNet-C | gaze estimation (VR_Gaming) | 60 |
//! | [`ssd_mobilenet_v2`] | SSD-MobileNetV2 | hand/face/object detection | 30 |
//! | [`hand_pose_net`] | HandPoseNet | hand pose estimation (VR_Gaming) | 30 |
//! | [`ofa_context`] | Once-for-All supernet | context understanding | 30 |
//! | [`kws_res8`] | KWS-res8 | keyword spotting | 15 |
//! | [`gnmt`] | GNMT | translation | 15 |
//! | [`skipnet`] | SkipNet | context understanding (AR_Call) | 30 |
//! | [`trailnet`] | TrailNet | outdoor navigation (Drone) | 60 |
//! | [`sosnet`] | SOSNet | visual odometry / obstacle det. | 60 |
//! | [`rapid_rl`] | RAPID-RL | indoor navigation (Drone) | 60 |
//! | [`googlenet_car`] | GoogLeNet-car | car classification (Drone) | 60 |
//! | [`focal_length_depth`] | FocalLengthDepth | depth estimation (AR_Social) | 30 |
//! | [`ed_tcn`] | ED-TCN | action segmentation (AR_Social) | 30 |
//! | [`vgg_voxceleb`] | VGG-VoxCeleb | face/speaker verification | 30 |

mod audio;
mod classification;
mod detection;
mod drone;
mod mobile;
mod regression;

pub use audio::{gnmt, kws_res8, vgg_voxceleb};
pub use classification::{googlenet_car, skipnet};
pub use detection::{hand_pose_net, ssd_mobilenet_v2};
pub use drone::{rapid_rl, sosnet, trailnet};
pub use mobile::{fbnet_c, ofa_context};
pub use regression::{ed_tcn, focal_length_depth};

use crate::{Layer, LayerKind};

/// All zoo models, for exhaustive iteration in tests and benches.
pub fn all_models() -> Vec<crate::Model> {
    vec![
        fbnet_c(),
        ssd_mobilenet_v2("ssd-mbv2"),
        hand_pose_net(),
        ofa_context(),
        kws_res8(),
        gnmt(),
        skipnet(),
        trailnet(),
        sosnet(),
        rapid_rl(),
        googlenet_car(),
        focal_length_depth(),
        ed_tcn(),
        vgg_voxceleb(),
    ]
}

pub(crate) fn conv(
    name: &'static str,
    in_hw: (u32, u32),
    in_c: u32,
    out_c: u32,
    kernel: u32,
    stride: u32,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d {
            in_h: in_hw.0,
            in_w: in_hw.1,
            in_c,
            out_c,
            kernel,
            stride,
            groups: 1,
        },
    )
    .expect("zoo convolution shapes are valid")
}

pub(crate) fn dwconv(
    name: &'static str,
    in_hw: (u32, u32),
    c: u32,
    kernel: u32,
    stride: u32,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv2d {
            in_h: in_hw.0,
            in_w: in_hw.1,
            in_c: c,
            out_c: c,
            kernel,
            stride,
            groups: c,
        },
    )
    .expect("zoo depthwise shapes are valid")
}

pub(crate) fn gemm(name: &'static str, m: u32, n: u32, k: u32) -> Layer {
    Layer::new(name, LayerKind::Gemm { m, n, k }).expect("zoo GEMM shapes are valid")
}

pub(crate) fn gemm16(name: &'static str, m: u32, n: u32, k: u32) -> Layer {
    Layer::with_bytes(name, LayerKind::Gemm { m, n, k }, 2).expect("zoo GEMM shapes are valid")
}

pub(crate) fn pool(
    name: &'static str,
    in_hw: (u32, u32),
    c: u32,
    kernel: u32,
    stride: u32,
) -> Layer {
    Layer::new(
        name,
        LayerKind::Pool {
            in_h: in_hw.0,
            in_w: in_hw.1,
            c,
            kernel,
            stride,
        },
    )
    .expect("zoo pooling shapes are valid")
}

pub(crate) fn eltwise(name: &'static str, elems: u64) -> Layer {
    Layer::new(name, LayerKind::Elementwise { elems }).expect("zoo element-wise shapes are valid")
}

/// Emits an inverted-residual (MobileNetV2 / MNasNet style) block:
/// 1×1 expand → k×k depthwise (stride) → 1×1 project.
///
/// Returns the output spatial size.
#[allow(clippy::too_many_arguments)]
pub(crate) fn inverted_residual(
    b: &mut crate::GraphBuilder,
    name: &'static str,
    hw: (u32, u32),
    in_c: u32,
    out_c: u32,
    expand: u32,
    kernel: u32,
    stride: u32,
) -> (u32, u32) {
    let mid = in_c * expand;
    if expand > 1 {
        b.push(conv(name, hw, in_c, mid, 1, 1));
    }
    b.push(dwconv(name, hw, mid, kernel, stride));
    let out_hw = (hw.0.div_ceil(stride), hw.1.div_ceil(stride));
    b.push(conv(name, out_hw, mid, out_c, 1, 1));
    out_hw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_and_have_unique_names() {
        let models = all_models();
        assert_eq!(models.len(), 14);
        let mut names: Vec<_> = models.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14, "duplicate model names in zoo");
    }

    #[test]
    fn every_variant_has_positive_work() {
        for model in all_models() {
            for v in model.variants() {
                assert!(
                    v.total_ops() > 0,
                    "{} variant {} empty",
                    model.name(),
                    v.name()
                );
            }
        }
    }

    #[test]
    fn supernet_variants_are_ordered_heaviest_first() {
        for model in all_models() {
            let mut prev = u64::MAX;
            for v in model.variants() {
                let macs = v.total_macs();
                assert!(
                    macs <= prev,
                    "{}: variant {} heavier than its predecessor",
                    model.name(),
                    v.name()
                );
                prev = macs;
            }
        }
    }

    #[test]
    fn inverted_residual_emits_expected_layers() {
        let mut b = crate::GraphBuilder::new("t");
        let out = inverted_residual(&mut b, "blk", (56, 56), 24, 32, 6, 3, 2);
        assert_eq!(out, (28, 28));
        assert_eq!(b.len(), 3);

        let mut b2 = crate::GraphBuilder::new("t2");
        inverted_residual(&mut b2, "blk", (112, 112), 32, 16, 1, 3, 1);
        assert_eq!(b2.len(), 2, "expand=1 skips the expansion conv");
    }
}
