//! Audio-pipeline networks: KWS-res8 keyword spotting, GNMT translation,
//! and the VGG-VoxCeleb speaker-verification model.

use super::{conv, eltwise, gemm, gemm16, pool};
use crate::{GraphBuilder, Model};

/// KWS-res8 (Tang & Lin, ICASSP'18): small-footprint residual keyword
/// spotter over a 101×40 MFCC map, ≈ 3 M MACs. The positive-detection
/// probability (50% in the paper) lives on the cascade edge to GNMT, not in
/// the model itself.
pub fn kws_res8() -> Model {
    let mut b = GraphBuilder::new("kws-res8");
    b.push(conv("conv0", (101, 40), 1, 45, 3, 1));
    b.push(pool("avgpool0", (101, 40), 45, 4, 4));
    let hw = (26, 10);
    for _ in 0..3 {
        b.push(conv("res-a", hw, 45, 45, 3, 1));
        b.push(conv("res-b", hw, 45, 45, 3, 1));
        b.push(eltwise("res-add", u64::from(hw.0) * u64::from(hw.1) * 45));
    }
    b.push(pool("gap", hw, 45, 26, 26));
    b.push(gemm("fc", 1, 12, 45));
    Model::single("KWS_res8", b.build().expect("kws graph is valid")).expect("kws model is valid")
}

/// GNMT (Wu et al. 2016) translating a 24-token utterance with a
/// 1024-wide, 8-layer encoder / 8-layer decoder LSTM stack, additive
/// attention, and a 32k-vocabulary softmax projection, in fp16
/// (≈ 4 G MACs, ≈ 330 MB of streamed weights — by far the heaviest single
/// inference in the workload suite, which is why it stresses the
/// schedulers even at 15 FPS).
///
/// Each LSTM layer is folded into one GEMM per direction:
/// `[seq × 2·hidden] · [2·hidden × 4·hidden]` (input ++ recurrent weights).
pub fn gnmt() -> Model {
    const SEQ: u32 = 24;
    const HID: u32 = 1024;
    let mut b = GraphBuilder::new("gnmt");
    // Bidirectional bottom encoder layer: two directional GEMMs.
    b.push(gemm16("enc0-fwd", SEQ, 4 * HID, 2 * HID));
    b.push(gemm16("enc0-bwd", SEQ, 4 * HID, 2 * HID));
    for _ in 1..8 {
        b.push(gemm16("enc", SEQ, 4 * HID, 2 * HID));
        b.push(eltwise("enc-res", u64::from(SEQ) * u64::from(HID)));
    }
    // Attention: score + context per decoder layer step, folded.
    b.push(gemm16("attn-score", SEQ, SEQ, HID));
    b.push(gemm16("attn-ctx", SEQ, HID, SEQ));
    for _ in 0..8 {
        b.push(gemm16("dec", SEQ, 4 * HID, 2 * HID));
        b.push(eltwise("dec-res", u64::from(SEQ) * u64::from(HID)));
    }
    b.push(gemm16("softmax-proj", SEQ, 32_000, HID));
    Model::single("GNMT", b.build().expect("gnmt graph is valid")).expect("gnmt model is valid")
}

/// VGG-M speaker/face verification network from the VoxCeleb paper
/// (Nagrani et al., Interspeech'17), over a 512×300 spectrogram,
/// ≈ 1.9 G MACs. Runs behind face detection in AR_Social at 30 FPS.
pub fn vgg_voxceleb() -> Model {
    let mut b = GraphBuilder::new("vgg-vox");
    b.push(conv("conv1", (512, 300), 1, 96, 7, 2));
    b.push(pool("pool1", (256, 150), 96, 2, 2));
    b.push(conv("conv2", (128, 75), 96, 160, 5, 2));
    b.push(pool("pool2", (64, 38), 160, 2, 2));
    b.push(conv("conv3", (32, 19), 160, 384, 3, 1));
    b.push(conv("conv4", (32, 19), 384, 256, 3, 1));
    b.push(conv("conv5", (32, 19), 256, 256, 3, 1));
    b.push(pool("pool5", (32, 19), 256, 3, 3));
    b.push(gemm("fc6", 1, 4096, 256 * 11 * 7));
    b.push(gemm("fc7", 1, 1024, 4096));
    b.push(gemm("embed", 1, 256, 1024));
    Model::single("VGG-VoxCeleb", b.build().expect("vgg-vox graph is valid"))
        .expect("vgg-vox model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kws_is_tiny() {
        let macs = kws_res8().total_macs();
        assert!((1_000_000..45_000_000).contains(&macs), "kws MACs {macs}");
    }

    #[test]
    fn gnmt_is_heavy_and_fp16() {
        let m = gnmt();
        let macs = m.total_macs();
        assert!(
            (2_500_000_000..6_000_000_000).contains(&macs),
            "gnmt MACs {macs}"
        );
        // Streamed weight footprint should be hundreds of MB (fp16).
        let weight_bytes: u64 = m
            .default_variant()
            .layers()
            .iter()
            .map(|l| l.stats().weight_bytes)
            .sum();
        assert!(
            (150_000_000..600_000_000).contains(&weight_bytes),
            "gnmt weights {weight_bytes}"
        );
    }

    #[test]
    fn vgg_vox_mac_count_plausible() {
        let macs = vgg_voxceleb().total_macs();
        assert!(
            (1_200_000_000..5_000_000_000).contains(&macs),
            "vgg-vox MACs {macs}"
        );
    }
}
