//! Drone-scenario networks: TrailNet navigation, SOSNet local descriptors,
//! and the RAPID-RL preemptive-exit policy network.

use super::{conv, eltwise, gemm, pool};
use crate::{GraphBuilder, Model};

/// TrailNet (Smolyanskiy et al., IROS'17): ResNet-18-based trail-following
/// network over a 256×144 camera frame, ≈ 1.3 G MACs at 60 FPS.
pub fn trailnet() -> Model {
    let mut b = GraphBuilder::new("trailnet");
    b.push(conv("stem", (256, 144), 3, 64, 7, 2));
    b.push(pool("pool1", (128, 72), 64, 2, 2));
    let stages: &[(u32, u32, u32, u32)] = &[
        (2, 64, 64, 1),
        (2, 64, 128, 2),
        (2, 128, 256, 2),
        (2, 256, 512, 2),
    ];
    let mut hw = (64, 36);
    for &(blocks, in_c, out_c, stride) in stages {
        b.push(conv("res-a", hw, in_c, out_c, 3, stride));
        hw = (hw.0.div_ceil(stride), hw.1.div_ceil(stride));
        b.push(conv("res-b", hw, out_c, out_c, 3, 1));
        b.push(eltwise(
            "res-add",
            u64::from(hw.0) * u64::from(hw.1) * u64::from(out_c),
        ));
        for _ in 1..blocks {
            b.push(conv("res-a", hw, out_c, out_c, 3, 1));
            b.push(conv("res-b", hw, out_c, out_c, 3, 1));
            b.push(eltwise(
                "res-add",
                u64::from(hw.0) * u64::from(hw.1) * u64::from(out_c),
            ));
        }
    }
    b.push(pool("gap", hw, 512, hw.0.max(hw.1), hw.0.max(hw.1)));
    b.push(gemm("fc-steer", 1, 6, 512));
    Model::single("TrailNet", b.build().expect("trailnet graph is valid"))
        .expect("trailnet model is valid")
}

/// SOSNet (Tian et al., CVPR'19): a 7-layer local-descriptor CNN applied to
/// 25 tracked 32×32 patches per frame (modelled as a 5×5 patch grid, i.e. a
/// 160×160 composite input — identical MAC and traffic totals).
/// ≈ 1 G MACs per frame at 60 FPS; used for visual odometry (outdoor) and
/// obstacle detection (indoor).
pub fn sosnet() -> Model {
    let mut b = GraphBuilder::new("sosnet");
    let grid = 5u32; // 5×5 = 25 patches
    let hw0 = (32 * grid, 32 * grid);
    b.push(conv("conv0", hw0, 1, 32, 3, 1));
    b.push(conv("conv1", hw0, 32, 32, 3, 1));
    b.push(conv("conv2", hw0, 32, 64, 3, 2));
    let hw1 = (hw0.0 / 2, hw0.1 / 2);
    b.push(conv("conv3", hw1, 64, 64, 3, 1));
    b.push(conv("conv4", hw1, 64, 128, 3, 2));
    let hw2 = (hw1.0 / 2, hw1.1 / 2);
    b.push(conv("conv5", hw2, 128, 128, 3, 1));
    // Final 8×8 conv producing one 128-d descriptor per patch.
    b.push(conv("conv6-desc", hw2, 128, 128, 8, 8));
    b.push(eltwise("l2norm", u64::from(grid) * u64::from(grid) * 128));
    Model::single("SOSNet", b.build().expect("sosnet graph is valid"))
        .expect("sosnet model is valid")
}

/// RAPID-RL (Kosta et al., ICRA'22): a reconfigurable DRL policy network
/// with preemptive exits for indoor drone navigation. The trunk is a
/// DQN-style conv stack over a 320×180×4 frame history; two exit branches
/// allow the inference to stop early when the intermediate confidence is
/// high. We use the paper's reported exit behaviour (roughly a third of
/// inferences leave at each branch).
pub fn rapid_rl() -> Model {
    let mut b = GraphBuilder::new("rapid-rl");
    b.push(conv("conv1", (320, 180), 4, 32, 8, 4));
    b.push(conv("conv2", (80, 45), 32, 64, 4, 2));
    let exit1 = b.len() - 1;
    b.push(conv("conv3", (40, 23), 64, 64, 3, 1));
    b.push(conv("conv4", (40, 23), 64, 128, 3, 2));
    let exit2 = b.len() - 1;
    b.push(conv("conv5", (20, 12), 128, 256, 3, 1));
    b.push(gemm("fc1", 1, 512, 256 * 20 * 12 / 4));
    b.push(gemm("fc-q", 1, 8, 512));
    let mut g = b;
    g.exit_point(exit1, 0.35);
    g.exit_point(exit2, 0.35);
    Model::single("RAPID_RL", g.build().expect("rapid-rl graph is valid"))
        .expect("rapid-rl model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailnet_mac_count_plausible() {
        let macs = trailnet().total_macs();
        // ResNet-18 at 256×144 ≈ 1.3 G MACs.
        assert!(
            (800_000_000..1_900_000_000).contains(&macs),
            "trailnet MACs {macs}"
        );
    }

    #[test]
    fn sosnet_mac_count_plausible() {
        let macs = sosnet().total_macs();
        // 25 patches × ~40 M MACs.
        assert!(
            (600_000_000..1_700_000_000).contains(&macs),
            "sosnet MACs {macs}"
        );
    }

    #[test]
    fn rapid_rl_exits_reduce_expected_work() {
        let m = rapid_rl();
        let g = m.default_variant();
        assert_eq!(g.exit_points().len(), 2);
        assert!(g.is_dynamic());
        let worst = g.total_ops() as f64;
        assert!(g.expected_ops() < 0.9 * worst);
    }

    #[test]
    fn rapid_rl_exit_probability_compounds() {
        let g = rapid_rl();
        let g = g.default_variant();
        let last = g.len() - 1;
        let p = g.execution_probability(last);
        assert!((p - 0.65 * 0.65).abs() < 1e-9, "p = {p}");
    }
}
