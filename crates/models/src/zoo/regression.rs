//! Dense-regression networks for AR_Social: FocalLengthDepth monocular
//! depth estimation and the ED-TCN action-segmentation network.

use super::{conv, eltwise, gemm, pool};
use crate::{GraphBuilder, Layer, LayerKind, Model};

/// FocalLengthDepth (He et al., TIP'18): monocular depth estimation with a
/// ResNet-50-style encoder over a 224×160 frame and a light upsampling
/// decoder, plus the focal-length embedding branch. ≈ 2.5 G MACs at 30 FPS —
/// the heaviest per-frame vision model in AR_Social.
pub fn focal_length_depth() -> Model {
    let mut b = GraphBuilder::new("focal-depth");
    b.push(conv("stem", (224, 160), 3, 64, 7, 2));
    b.push(pool("pool1", (112, 80), 64, 2, 2));
    // Bottleneck stages (blocks, in_c, mid_c, out_c, stride).
    let stages: &[(u32, u32, u32, u32, u32)] = &[
        (3, 64, 64, 256, 1),
        (4, 256, 128, 512, 2),
        (6, 512, 256, 1024, 2),
        (3, 1024, 512, 2048, 2),
    ];
    let mut hw = (56, 40);
    for &(blocks, in_c, mid, out_c, stride) in stages {
        b.push(conv("btl-1x1a", hw, in_c, mid, 1, 1));
        b.push(conv("btl-3x3", hw, mid, mid, 3, stride));
        hw = (hw.0.div_ceil(stride), hw.1.div_ceil(stride));
        b.push(conv("btl-1x1b", hw, mid, out_c, 1, 1));
        for _ in 1..blocks {
            b.push(conv("btl-1x1a", hw, out_c, mid, 1, 1));
            b.push(conv("btl-3x3", hw, mid, mid, 3, 1));
            b.push(conv("btl-1x1b", hw, mid, out_c, 1, 1));
        }
    }
    // Focal-length embedding branch.
    b.push(gemm("focal-embed", 1, 512, 64));
    // Decoder: 1×1 channel reduction, then three upsample+conv stages back
    // to quarter resolution.
    b.push(conv("dec-reduce", (14, 10), 2048, 256, 1, 1));
    b.push(conv("dec0", (28, 20), 256, 128, 3, 1));
    b.push(conv("dec1", (56, 40), 128, 64, 3, 1));
    b.push(conv("depth-head", (56, 40), 64, 1, 3, 1));
    Model::single(
        "FocalLengthDepth",
        b.build().expect("focal-depth graph is valid"),
    )
    .expect("focal-depth model is valid")
}

/// A 1-D temporal convolution in im2col (GEMM) form: `T/stride` output
/// steps, each a `(in_c·k) → out_c` dot product. MAC counts are exact;
/// input bytes carry the usual im2col duplication, a fair stand-in for the
/// sliding-window buffering a real accelerator performs.
fn conv1d(name: &'static str, frames: u32, in_c: u32, out_c: u32, k: u32, stride: u32) -> Layer {
    Layer::new(
        name,
        LayerKind::Gemm {
            m: frames.div_ceil(stride),
            n: out_c,
            k: in_c * k,
        },
    )
    .expect("1-D conv shapes are valid")
}

/// ED-TCN (Lea et al., CVPR'17): encoder-decoder temporal convolutional
/// network segmenting actions over a 128-frame window of 128-d visual
/// features, with the characteristic long (k=25) 1-D filters.
/// ≈ 0.15 G MACs at 30 FPS — deliberately the lightweight AR_Social model,
/// which is exactly what makes it starvation-prone (§3.3).
pub fn ed_tcn() -> Model {
    const T: u32 = 128;
    let mut b = GraphBuilder::new("ed-tcn");
    // Encoder: conv(k=25) + pool ×2.
    b.push(conv1d("enc0", T, 128, 96, 5, 1));
    b.push(conv1d("enc0-long", T, 96, 96, 25, 1));
    b.push(pool("pool0", (1, T), 96, 2, 2));
    b.push(conv1d("enc1", T / 2, 96, 128, 25, 1));
    b.push(pool("pool1", (1, T / 2), 128, 2, 2));
    // Decoder: upsample + conv ×2.
    b.push(conv1d("dec0", T / 2, 128, 96, 25, 1));
    b.push(conv1d("dec1", T, 96, 96, 25, 1));
    b.push(conv1d("head", T, 96, 48, 1, 1));
    b.push(eltwise("softmax", u64::from(T) * 48));
    Model::single("ED-TCN", b.build().expect("ed-tcn graph is valid"))
        .expect("ed-tcn model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_the_heavy_ar_social_model() {
        let macs = focal_length_depth().total_macs();
        assert!(
            (1_800_000_000..4_000_000_000).contains(&macs),
            "depth MACs {macs}"
        );
    }

    #[test]
    fn ed_tcn_is_light() {
        let macs = ed_tcn().total_macs();
        assert!(
            (50_000_000..800_000_000).contains(&macs),
            "ed-tcn MACs {macs}"
        );
    }

    #[test]
    fn conv1d_mac_count_is_one_dimensional() {
        // T output steps, each an (in_c·k) → out_c dot product.
        let l = conv1d("t", 128, 16, 32, 25, 1);
        assert_eq!(l.stats().out_elems, 128 * 32);
        assert_eq!(l.stats().macs, 128 * 32 * 16 * 25);
        assert_eq!(l.stats().weight_bytes, 16 * 25 * 32);
    }
}
