//! Classification networks with operator-level dynamicity: SkipNet and
//! GoogLeNet-car.

use super::{conv, eltwise, gemm, pool};
use crate::{GraphBuilder, Model};

/// Emits one GoogLeNet inception module (four branches, concatenated).
///
/// `(c1, c3r, c3, c5r, c5, pp)` follow the original Szegedy et al. table.
fn inception(
    b: &mut GraphBuilder,
    name: &'static str,
    hw: (u32, u32),
    in_c: u32,
    cfg: (u32, u32, u32, u32, u32, u32),
) -> u32 {
    let (c1, c3r, c3, c5r, c5, pp) = cfg;
    b.push(conv(name, hw, in_c, c1, 1, 1));
    b.push(conv(name, hw, in_c, c3r, 1, 1));
    b.push(conv(name, hw, c3r, c3, 3, 1));
    b.push(conv(name, hw, in_c, c5r, 1, 1));
    b.push(conv(name, hw, c5r, c5, 5, 1));
    b.push(conv(name, hw, in_c, pp, 1, 1));
    let out_c = c1 + c3 + c5 + pp;
    b.push(eltwise(
        name,
        u64::from(hw.0) * u64::from(hw.1) * u64::from(out_c),
    ));
    out_c
}

/// GoogLeNet fine-tuned for car classification (Yang et al., CVPR'15 —
/// "GoogLeNet-car"), 224×224 input, ≈ 0.75 G MACs, running at 60 FPS in the
/// indoor-drone parking-enforcement scenario.
pub fn googlenet_car() -> Model {
    let mut b = GraphBuilder::new("googlenet-car");
    b.push(conv("stem1", (224, 224), 3, 64, 7, 2));
    b.push(pool("pool1", (112, 112), 64, 2, 2));
    b.push(conv("stem2", (56, 56), 64, 64, 1, 1));
    b.push(conv("stem3", (56, 56), 64, 192, 3, 1));
    b.push(pool("pool2", (56, 56), 192, 2, 2));
    let mut c = 192;
    let hw28 = (28, 28);
    c = inception(&mut b, "3a", hw28, c, (64, 96, 128, 16, 32, 32));
    c = inception(&mut b, "3b", hw28, c, (128, 128, 192, 32, 96, 64));
    b.push(pool("pool3", hw28, c, 2, 2));
    let hw14 = (14, 14);
    c = inception(&mut b, "4a", hw14, c, (192, 96, 208, 16, 48, 64));
    c = inception(&mut b, "4b", hw14, c, (160, 112, 224, 24, 64, 64));
    c = inception(&mut b, "4c", hw14, c, (128, 128, 256, 24, 64, 64));
    c = inception(&mut b, "4d", hw14, c, (112, 144, 288, 32, 64, 64));
    c = inception(&mut b, "4e", hw14, c, (256, 160, 320, 32, 128, 128));
    b.push(pool("pool4", hw14, c, 2, 2));
    let hw7 = (7, 7);
    c = inception(&mut b, "5a", hw7, c, (256, 160, 320, 32, 128, 128));
    c = inception(&mut b, "5b", hw7, c, (384, 192, 384, 48, 128, 128));
    b.push(pool("gap", hw7, c, 7, 7));
    b.push(gemm("fc-car", 1, 431, c));
    Model::single(
        "GoogLeNet-car",
        b.build().expect("googlenet graph is valid"),
    )
    .expect("googlenet model is valid")
}

/// SkipNet (Wang et al., ECCV'18): a ResNet-34-style backbone whose
/// non-downsampling residual blocks are gated and skipped with 50%
/// probability each (the configuration the paper cites at 72% top-1 on
/// ImageNet). Worst-case path ≈ 1.8 G MACs; expected path ≈ 1.2 G MACs.
pub fn skipnet() -> Model {
    const P_SKIP: f64 = 0.5;
    let mut b = GraphBuilder::new("skipnet");
    b.push(conv("stem", (224, 224), 3, 64, 7, 2));
    b.push(pool("pool1", (112, 112), 64, 2, 2));
    let stages: &[(u32, u32, u32, u32)] = &[
        // (blocks, in_c, out_c, first stride) — ResNet-34 schedule.
        (3, 64, 64, 1),
        (4, 64, 128, 2),
        (6, 128, 256, 2),
        (3, 256, 512, 2),
    ];
    let mut hw = (56, 56);
    for &(blocks, in_c, out_c, stride) in stages {
        // First block of each stage (projection / downsample): not gated.
        b.push(conv("res-a", hw, in_c, out_c, 3, stride));
        hw = (hw.0.div_ceil(stride), hw.1.div_ceil(stride));
        b.push(conv("res-b", hw, out_c, out_c, 3, 1));
        b.push(eltwise(
            "res-add",
            u64::from(hw.0) * u64::from(hw.1) * u64::from(out_c),
        ));
        // Remaining blocks: gated, skipped with probability 0.5 each.
        for _ in 1..blocks {
            let first = b.len();
            b.push(conv("gated-a", hw, out_c, out_c, 3, 1));
            b.push(conv("gated-b", hw, out_c, out_c, 3, 1));
            b.push(eltwise(
                "gated-add",
                u64::from(hw.0) * u64::from(hw.1) * u64::from(out_c),
            ));
            let last = b.len() - 1;
            b.skip_block(first, last, P_SKIP);
        }
    }
    b.push(pool("gap", hw, 512, 7, 7));
    b.push(gemm("fc", 1, 1000, 512));
    Model::single("SkipNet", b.build().expect("skipnet graph is valid"))
        .expect("skipnet model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn googlenet_mac_count_near_published() {
        let macs = googlenet_car().total_macs();
        // ~1.5 GFLOPs = 0.75 G MACs.
        assert!(
            (900_000_000..2_200_000_000).contains(&macs),
            "googlenet MACs {macs}"
        );
    }

    #[test]
    fn skipnet_has_gated_blocks_and_expected_work_below_worst_case() {
        let m = skipnet();
        let g = m.default_variant();
        // ResNet-34 has (3-1)+(4-1)+(6-1)+(3-1) = 12 gated blocks.
        assert_eq!(g.skip_blocks().len(), 12);
        assert!(g.is_dynamic());
        let worst = g.total_ops() as f64;
        let expected = g.expected_ops();
        assert!(expected < 0.85 * worst, "expected {expected} worst {worst}");
        assert!(expected > 0.4 * worst);
    }

    #[test]
    fn skipnet_worst_case_near_resnet34() {
        let macs = skipnet().total_macs();
        // ResNet-34 ≈ 3.6 GFLOPs ≈ 1.8 G MACs.
        assert!(
            (2_400_000_000..4_500_000_000).contains(&macs),
            "skipnet MACs {macs}"
        );
    }
}
