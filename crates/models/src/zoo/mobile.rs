//! Mobile-NAS classification backbones: FBNet-C and the Once-for-All
//! context-understanding supernet.

use super::{conv, gemm, inverted_residual, pool};
use crate::{GraphBuilder, Model, ModelGraph};

/// FBNet-C (Wu et al., CVPR'19), used for gaze estimation at 60 FPS in
/// VR_Gaming. One 224×224 eye crop per frame; ≈ 375 MFLOPs ≈ 187 M MACs,
/// matching the published figure.
pub fn fbnet_c() -> Model {
    let mut b = GraphBuilder::new("fbnet-c");
    b.push(conv("stem", (224, 224), 3, 16, 3, 2));
    let mut hw = (112, 112);
    // (in_c, out_c, expand, kernel, stride) per searched block, following the
    // FBNet-C macro-architecture (channels 16→24→32→64→112→184→352).
    let blocks: &[(u32, u32, u32, u32, u32)] = &[
        (16, 16, 1, 3, 1),
        (16, 24, 6, 3, 2),
        (24, 24, 1, 3, 1),
        (24, 24, 1, 3, 1),
        (24, 32, 6, 5, 2),
        (32, 32, 3, 3, 1),
        (32, 32, 6, 5, 1),
        (32, 32, 6, 3, 1),
        (32, 64, 6, 5, 2),
        (64, 64, 3, 5, 1),
        (64, 64, 6, 5, 1),
        (64, 64, 6, 3, 1),
        (64, 112, 6, 5, 1),
        (112, 112, 6, 3, 1),
        (112, 112, 6, 5, 1),
        (112, 112, 6, 5, 1),
        (112, 184, 6, 5, 2),
        (184, 184, 6, 5, 1),
        (184, 184, 6, 5, 1),
        (184, 184, 6, 5, 1),
        (184, 352, 6, 3, 1),
    ];
    for &(in_c, out_c, e, k, s) in blocks {
        hw = inverted_residual(&mut b, "mb", hw, in_c, out_c, e, k, s);
    }
    b.push(conv("head", hw, 352, 1504, 1, 1));
    b.push(pool("gap", hw, 1504, hw.0.max(hw.1), hw.0.max(hw.1)));
    b.push(gemm("fc-gaze", 1, 64, 1504));
    Model::single("FBNet-C", b.build().expect("fbnet-c graph is valid"))
        .expect("fbnet-c model is valid")
}

/// One Once-for-All (Cai et al., ICLR'20) subnet of the context
/// understanding supernet.
///
/// `depth` is the number of blocks kept per stage (OFA elastic depth: 2–4),
/// `width` scales channels (elastic width), and `kernel` is the depthwise
/// kernel size (elastic kernel: 3–7). Variant 0 mirrors the heaviest
/// deployed subnet (~1.1 G MACs at a 256² input); the lightest matches
/// `ofa-s7edge-41`'s class (≈ 0.1 G MACs, 73.1% top-1 per §4.5.2).
fn ofa_subnet(name: &'static str, depth: u32, width_mult: f64, kernel: u32) -> ModelGraph {
    let ch = |c: u32| -> u32 { ((f64::from(c) * width_mult).round() as u32).max(8) };
    let mut b = GraphBuilder::new(name);
    b.push(conv("stem", (256, 256), 3, ch(16), 3, 2));
    let mut hw = (128, 128);
    let stages: &[(u32, u32, u32)] = &[
        // (base in_c, base out_c, stride of first block)
        (16, 24, 2),
        (24, 40, 2),
        (40, 80, 2),
        (80, 112, 1),
        (112, 160, 2),
    ];
    for &(in_c, out_c, stride) in stages {
        hw = inverted_residual(&mut b, "mb", hw, ch(in_c), ch(out_c), 4, kernel, stride);
        for _ in 1..depth {
            hw = inverted_residual(&mut b, "mb", hw, ch(out_c), ch(out_c), 4, kernel, 1);
        }
    }
    b.push(conv("head", hw, ch(160), ch(960), 1, 1));
    b.push(pool("gap", hw, ch(960), hw.0.max(hw.1), hw.0.max(hw.1)));
    b.push(gemm("fc", 1, 128, ch(960)));
    b.build().expect("ofa subnet graph is valid")
}

/// The Once-for-All context-understanding supernet with the four
/// weight-sharing variants used by the paper's supernet-switching
/// evaluation (§4.5, Figure 14). Variant 0 ("Original") is the default.
pub fn ofa_context() -> Model {
    Model::supernet(
        "Once-for-All",
        vec![
            ofa_subnet("ofa/original", 4, 1.35, 7),
            ofa_subnet("ofa/lg", 3, 1.0, 5),
            ofa_subnet("ofa/md", 3, 0.75, 5),
            ofa_subnet("ofa/sm", 2, 0.55, 3),
        ],
    )
    .expect("ofa supernet is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fbnet_c_mac_count_near_published() {
        let macs = fbnet_c().total_macs();
        // Published: ~375 MFLOPs ≈ 187 M MACs (we allow generous tolerance
        // for the approximated block table + gaze head).
        assert!(
            (150_000_000..500_000_000).contains(&macs),
            "fbnet-c MACs {macs}"
        );
    }

    #[test]
    fn ofa_variants_span_heavy_to_light() {
        let m = ofa_context();
        assert_eq!(m.variant_count(), 4);
        let heaviest = m.variants()[0].total_macs();
        let lightest = m.variants()[3].total_macs();
        assert!(
            heaviest > 2 * lightest,
            "supernet range too narrow: {heaviest} vs {lightest}"
        );
        // Lightest near ofa-s7edge-41's 96 MFLOPs = 48 M MACs.
        assert!(
            (25_000_000..110_000_000).contains(&lightest),
            "lightest {lightest}"
        );
    }

    #[test]
    fn ofa_is_supernet_fbnet_is_not() {
        assert!(ofa_context().is_supernet());
        assert!(!fbnet_c().is_supernet());
    }
}
