//! Detection and pose-estimation networks: SSD-MobileNetV2 and HandPoseNet.

use super::{conv, dwconv, eltwise, inverted_residual};
use crate::{GraphBuilder, Model};

/// SSD-MobileNetV2 (Liu et al. ECCV'16 head on a Sandler et al. backbone) at
/// a 300×300 input, ≈ 0.8 G MACs. The paper uses this detector for hand
/// detection (VR_Gaming), face detection (AR_Social), and object detection
/// (both drone scenarios), so the builder takes the deployment name.
pub fn ssd_mobilenet_v2(name: &'static str) -> Model {
    let mut b = GraphBuilder::new("ssd-mbv2");
    b.push(conv("stem", (300, 300), 3, 32, 3, 2));
    let mut hw = (150, 150);
    // MobileNetV2 inverted-residual schedule (t, c, n, s).
    let schedule: &[(u32, u32, u32, u32)] = &[
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_c = 32;
    for &(t, c, n, s) in schedule {
        hw = inverted_residual(&mut b, "mb", hw, in_c, c, t, 3, s);
        for _ in 1..n {
            hw = inverted_residual(&mut b, "mb", hw, c, c, t, 3, 1);
        }
        in_c = c;
    }
    b.push(conv("conv-last", hw, 320, 1280, 1, 1));
    // SSD-lite extra feature layers: 10→5→3→2→1 pyramid.
    let mut c = 1280;
    for (i, &(out_c, stride)) in [(512u32, 2u32), (256, 2), (256, 2), (128, 2)]
        .iter()
        .enumerate()
    {
        let names = ["extra0", "extra1", "extra2", "extra3"];
        b.push(conv(names[i], hw, c, out_c / 2, 1, 1));
        b.push(dwconv(names[i], hw, out_c / 2, 3, stride));
        hw = (hw.0.div_ceil(stride), hw.1.div_ceil(stride));
        b.push(conv(names[i], hw, out_c / 2, out_c, 1, 1));
        c = out_c;
    }
    // SSDLite depthwise-separable class + box heads at the two dominant
    // pyramid resolutions (6 anchors × (21 classes + 4 box coords)).
    b.push(dwconv("head-19", (19, 19), 576, 3, 1));
    b.push(conv("head-cls-19", (19, 19), 576, 126, 1, 1));
    b.push(conv("head-box-19", (19, 19), 576, 24, 1, 1));
    b.push(dwconv("head-10", (10, 10), 1280, 3, 1));
    b.push(conv("head-cls-10", (10, 10), 1280, 126, 1, 1));
    b.push(conv("head-box-10", (10, 10), 1280, 24, 1, 1));
    b.push(eltwise("nms", 1917 * 21));
    Model::single(name, b.build().expect("ssd-mbv2 graph is valid"))
        .expect("ssd-mbv2 model is valid")
}

/// HandPoseNet (Madadi et al., global-to-local hand pose regression from
/// depth crops). Hourglass-style encoder/decoder on a 128×128 crop plus a
/// regression head; ≈ 1.3 G MACs. Runs at 30 FPS behind hand detection.
pub fn hand_pose_net() -> Model {
    let mut b = GraphBuilder::new("handposenet");
    b.push(conv("enc0", (128, 128), 1, 32, 3, 1));
    b.push(conv("enc1", (128, 128), 32, 64, 3, 2));
    b.push(conv("enc2", (64, 64), 64, 96, 3, 1));
    b.push(conv("enc3", (64, 64), 96, 128, 3, 2));
    b.push(conv("enc4", (32, 32), 128, 192, 3, 1));
    b.push(conv("enc5", (32, 32), 192, 256, 3, 2));
    b.push(conv("enc6", (16, 16), 256, 384, 3, 1));
    b.push(conv("bottleneck", (16, 16), 384, 384, 3, 1));
    // Decoder (upsample + conv, modelled at the upsampled resolutions).
    b.push(conv("dec0", (32, 32), 384, 128, 3, 1));
    b.push(conv("dec1", (64, 64), 128, 64, 3, 1));
    b.push(conv("heatmaps", (64, 64), 64, 42, 3, 1));
    // Global regression branch: 21 joints × 3 coordinates.
    b.push(super::gemm("fc-pose", 1, 1024, 384 * 16 * 16 / 4));
    b.push(super::gemm("fc-joints", 1, 63, 1024));
    Model::single(
        "HandPoseNet",
        b.build().expect("handposenet graph is valid"),
    )
    .expect("handposenet model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_mac_count_near_published() {
        let macs = ssd_mobilenet_v2("ssd").total_macs();
        // ~0.8 G MACs for SSD(Lite)-MobileNetV2 at 300².
        assert!(
            (600_000_000..1_800_000_000).contains(&macs),
            "ssd MACs {macs}"
        );
    }

    #[test]
    fn ssd_deployment_names_differ_but_share_graph() {
        let a = ssd_mobilenet_v2("HD");
        let b = ssd_mobilenet_v2("FD");
        assert_ne!(a.name(), b.name());
        assert_eq!(a.total_macs(), b.total_macs());
    }

    #[test]
    fn handpose_mac_count_plausible() {
        let macs = hand_pose_net().total_macs();
        assert!(
            (600_000_000..2_500_000_000).contains(&macs),
            "handpose MACs {macs}"
        );
    }
}
