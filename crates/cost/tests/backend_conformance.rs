//! Differential conformance suite: every [`CostBackend`] answers the same
//! contract, and a table exported from the analytical backend and
//! re-imported reproduces it **bit-for-bit** — per [`LayerCost`] cell,
//! per gang, per switch factor, through both text formats.
//!
//! (The end-to-end half — bit-identical `MapScore` tables and `Metrics`
//! fingerprints across a 5-scenario × 4-seed grid — lives in the
//! workspace-level `tests/backend_fingerprint.rs`, which may depend on
//! the simulator.)

use dream_cost::{CostBackend, CostModel, CostParams, Platform, PlatformPreset, TableBackend};
use dream_models::{CascadeProbability, Layer, Scenario, ScenarioKind};

/// Every distinct layer deployed by `kind` (all pipelines, all variants).
fn scenario_layers(kind: ScenarioKind) -> Vec<Layer> {
    let scenario = Scenario::new(kind, CascadeProbability::default_paper());
    let mut layers = Vec::new();
    for pipeline in scenario.pipelines() {
        for node in pipeline.nodes() {
            for graph in node.model.variants() {
                layers.extend(graph.layers().iter().cloned());
            }
        }
    }
    layers
}

fn assert_costs_bit_equal(a: &dream_cost::LayerCost, b: &dream_cost::LayerCost, what: &str) {
    for (field, x, y) in [
        ("latency_ns", a.latency_ns, b.latency_ns),
        ("energy_pj", a.energy_pj, b.energy_pj),
        ("compute_ns", a.compute_ns, b.compute_ns),
        ("dram_ns", a.dram_ns, b.dram_ns),
        ("sram_bytes", a.sram_bytes, b.sram_bytes),
        ("dram_bytes", a.dram_bytes, b.dram_bytes),
        ("utilization", a.utilization, b.utilization),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: {field} diverged ({x} vs {y})"
        );
    }
}

/// All ordered multi-member gangs a ≤3-accelerator platform can form.
fn ordered_gangs(platform: &Platform) -> Vec<Vec<usize>> {
    let n = platform.len();
    let mut out = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            out.push(vec![a, b]);
            for c in 0..n {
                if c != a && c != b {
                    out.push(vec![a, b, c]);
                }
            }
        }
    }
    out
}

/// The core differential property: export → import round trips are
/// bit-identical to the source backend on every query the simulator can
/// make, for every scenario's layer set, on heterogeneous and homogeneous
/// platforms, through both text formats.
#[test]
fn exported_table_reproduces_analytical_backend_bit_for_bit() {
    for preset in [PlatformPreset::Hetero4kWs1Os2, PlatformPreset::Homo8kWs2] {
        let platform = Platform::preset(preset);
        let model = CostModel::paper_default();
        for kind in ScenarioKind::all() {
            let layers = scenario_layers(kind);
            assert!(!layers.is_empty(), "{kind}: no layers");
            let derived = TableBackend::derive("conformance", &model, &platform, &layers).unwrap();
            // Round-trip through both text formats; each reload must be a
            // bit-exact clone of the derived table.
            let reloaded = [
                TableBackend::from_csv_str(&derived.to_csv_string()).unwrap(),
                TableBackend::from_json_str(&derived.to_json_string()).unwrap(),
            ];
            for table in &reloaded {
                assert_eq!(table.calibration_digest(), derived.calibration_digest());
                for layer in &layers {
                    for acc in platform.accelerators() {
                        let a = CostBackend::layer_cost(&model, layer, acc).unwrap();
                        let b = table.layer_cost(layer, acc).unwrap();
                        assert_costs_bit_equal(
                            &a,
                            &b,
                            &format!("{kind}/{}/{}", layer.name(), acc.name()),
                        );
                        // Single-member gangs resolve through the layer
                        // row and must match the analytical fission
                        // formula (penalty exactly 1.0).
                        let ga = CostBackend::gang_cost(&model, layer, &[acc]).unwrap();
                        let gb = table.gang_cost(layer, &[acc]).unwrap();
                        assert_costs_bit_equal(&ga, &gb, "single-member gang");
                    }
                    for gang in ordered_gangs(&platform) {
                        let members: Vec<&dream_cost::AcceleratorConfig> =
                            gang.iter().map(|&i| &platform.accelerators()[i]).collect();
                        let a = CostBackend::gang_cost(&model, layer, &members).unwrap();
                        let b = table.gang_cost(layer, &members).unwrap();
                        assert_costs_bit_equal(&a, &b, &format!("gang {gang:?}"));
                    }
                }
                for acc in platform.accelerators() {
                    let fa = model.switch_factors(acc).unwrap();
                    let fb = table.switch_factors(acc).unwrap();
                    assert_eq!(fa.bytes_per_ns.to_bits(), fb.bytes_per_ns.to_bits());
                    assert_eq!(
                        fa.energy_pj_per_byte.to_bits(),
                        fb.energy_pj_per_byte.to_bits()
                    );
                    for (i, o) in [(0, 0), (1, 0), (4_096, 0), (123_457, 654_321)] {
                        let sa = CostBackend::switch_cost(&model, i, o, acc).unwrap();
                        let sb = table.switch_cost(i, o, acc).unwrap();
                        assert_eq!(sa.latency_ns.to_bits(), sb.latency_ns.to_bits());
                        assert_eq!(sa.energy_pj.to_bits(), sb.energy_pj.to_bits());
                    }
                }
            }
        }
    }
}

/// Backends never alias: the digest separates backend families even when
/// the table is a bit-exact export, separates calibrations within a
/// family, and is stable across re-derivation.
#[test]
fn calibration_digests_separate_backends_and_calibrations() {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let model = CostModel::paper_default();
    let layers = scenario_layers(ScenarioKind::ArCall);
    let table = TableBackend::derive("t", &model, &platform, &layers).unwrap();

    assert_eq!(model.kind(), "analytical");
    assert_eq!(table.kind(), "table");
    assert_ne!(
        model.calibration_digest(),
        table.calibration_digest(),
        "a bit-exact export still identifies as a different backend"
    );

    // Re-deriving is deterministic.
    let again = TableBackend::derive("t2", &model, &platform, &layers).unwrap();
    assert_eq!(table.calibration_digest(), again.calibration_digest());

    // A different calibration exports a different table digest.
    let mut params = CostParams::paper_defaults();
    params.mac_energy_pj *= 2.0;
    let recal = CostModel::new(params).unwrap();
    let recal_table = TableBackend::derive("t3", &recal, &platform, &layers).unwrap();
    assert_ne!(table.calibration_digest(), recal_table.calibration_digest());
}

/// The switch-cost op sequence is shared: a backend reporting the same
/// factors produces the same switch costs, with zero-byte switches
/// costing exactly zero.
#[test]
fn switch_cost_formula_is_shared_and_zero_at_zero_bytes() {
    let platform = Platform::preset(PlatformPreset::Homo4kWs2);
    let model = CostModel::paper_default();
    let layers = scenario_layers(ScenarioKind::ArCall);
    let table = TableBackend::derive("t", &model, &platform, &layers).unwrap();
    let acc = &platform.accelerators()[0];
    let z = table.switch_cost(0, 0, acc).unwrap();
    assert_eq!(z.latency_ns, 0.0);
    assert_eq!(z.energy_pj, 0.0);
    // The trait's inherited formula matches the analytical inherent one.
    let inherent = model.switch_cost(10_000, 20_000, acc);
    let via_trait = CostBackend::switch_cost(&model, 10_000, 20_000, acc).unwrap();
    assert_eq!(
        inherent.latency_ns.to_bits(),
        via_trait.latency_ns.to_bits()
    );
    assert_eq!(inherent.energy_pj.to_bits(), via_trait.energy_pj.to_bits());
}

/// A table saved to disk and loaded back (CSV and JSON paths) is the same
/// backend.
#[test]
fn file_round_trip_preserves_the_backend() {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let model = CostModel::paper_default();
    let layers = scenario_layers(ScenarioKind::DroneIndoor);
    let table = TableBackend::derive("disk", &model, &platform, &layers).unwrap();
    let dir = std::env::temp_dir().join(format!("dream-cost-conformance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for file in ["table.csv", "table.json"] {
        let path = dir.join(file);
        table.save(&path).unwrap();
        let loaded = TableBackend::load(&path).unwrap();
        assert_eq!(
            loaded.calibration_digest(),
            table.calibration_digest(),
            "{file}"
        );
        assert_eq!(loaded.name(), "disk");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
