//! Property tests for the cost-table loader: hostile documents always
//! fail with a *typed* [`CostError`] (never a panic, never a silently
//! defaulted value), and well-formed documents round-trip every `f64`
//! bit exactly through both text formats.

use dream_cost::{CostBackend, CostError, Dataflow, TableBackend};
use dream_models::{Layer, LayerKind};
use proptest::prelude::*;

/// Positive finite f64 with wild bit patterns: reinterpret random bits,
/// fall back deterministically when the draw is not usable as a cost.
fn cost_from_bits(bits: u64) -> f64 {
    let v = f64::from_bits(bits & !(1u64 << 63));
    if v.is_finite() {
        v
    } else {
        // Salvage the mantissa into a normal value instead of discarding
        // the case.
        f64::from_bits((bits & ((1 << 52) - 1)) | (1023u64 << 52))
    }
}

/// A fraction in [0, 1] with full mantissa diversity.
fn unit_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

fn fmt(v: f64) -> String {
    format!("{v:?}")
}

/// A document with one accelerator (`A`) and one element-wise layer
/// (`l/elem:1/b1`) carrying the given values.
fn one_cell_csv(switch: [f64; 2], cost: [f64; 7]) -> String {
    format!(
        "table,v1,prop\nswitch,A,{},{}\nlayer,l/elem:1/b1,A,{}\n",
        fmt(switch[0]),
        fmt(switch[1]),
        cost.map(fmt).join(","),
    )
}

fn probe_layer() -> Layer {
    Layer::new("l", LayerKind::Elementwise { elems: 1 }).unwrap()
}

fn probe_acc() -> dream_cost::AcceleratorConfig {
    dream_cost::AcceleratorConfig::new("A", 8, Dataflow::WeightStationary, 0.7, 1.0, 1).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: arbitrary in-domain f64 bit patterns survive
    /// CSV → table → CSV → table and JSON → table unchanged, bit for bit.
    #[test]
    fn f64_bits_survive_text_round_trips(
        raw in proptest::collection::vec(any::<u64>(), 9..10),
    ) {
        let switch = [
            // bytes_per_ns must be > 0: nudge zero to the smallest normal.
            cost_from_bits(raw[0]).max(f64::MIN_POSITIVE),
            cost_from_bits(raw[1]),
        ];
        let mut cost = [0.0; 7];
        for i in 0..6 {
            cost[i] = cost_from_bits(raw[2 + i]);
        }
        cost[6] = unit_from_bits(raw[8]); // utilization ∈ [0, 1]
        let doc = one_cell_csv(switch, cost);
        let t1 = TableBackend::from_csv_str(&doc).expect("in-domain doc loads");
        let t2 = TableBackend::from_csv_str(&t1.to_csv_string()).expect("re-serialized doc loads");
        let t3 = TableBackend::from_json_str(&t1.to_json_string()).expect("json doc loads");
        for t in [&t1, &t2, &t3] {
            let f = t.switch_factors(&probe_acc()).unwrap();
            prop_assert_eq!(f.bytes_per_ns.to_bits(), switch[0].to_bits());
            prop_assert_eq!(f.energy_pj_per_byte.to_bits(), switch[1].to_bits());
            let c = t.layer_cost(&probe_layer(), &probe_acc()).unwrap();
            prop_assert_eq!(c.latency_ns.to_bits(), cost[0].to_bits());
            prop_assert_eq!(c.energy_pj.to_bits(), cost[1].to_bits());
            prop_assert_eq!(c.compute_ns.to_bits(), cost[2].to_bits());
            prop_assert_eq!(c.dram_ns.to_bits(), cost[3].to_bits());
            prop_assert_eq!(c.sram_bytes.to_bits(), cost[4].to_bits());
            prop_assert_eq!(c.dram_bytes.to_bits(), cost[5].to_bits());
            prop_assert_eq!(c.utilization.to_bits(), cost[6].to_bits());
        }
        prop_assert_eq!(t1.calibration_digest(), t2.calibration_digest());
        prop_assert_eq!(t1.calibration_digest(), t3.calibration_digest());
    }

    /// Truncating a well-formed document anywhere never panics: it either
    /// still loads (cut fell on a row boundary) or fails with a typed
    /// error.
    #[test]
    fn truncated_documents_fail_typed_or_load(cut_seed in any::<u64>()) {
        let doc = one_cell_csv([1.5, 2.5], [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.5]);
        let cut = (cut_seed as usize) % doc.len();
        let mut trunc = doc[..cut].to_string();
        prop_assert!(matches!(
            TableBackend::from_csv_str(&trunc),
            Ok(_)
                | Err(CostError::TableParse { .. })
                | Err(CostError::MissingEntry { .. })
        ));
        // Garbage appended after the cut is a parse problem, not a panic.
        trunc.push_str("@@@,garbage");
        prop_assert!(TableBackend::from_csv_str(&trunc).is_err());
    }

    /// Random single-byte corruption of the numeric region never panics
    /// and never silently alters a value: the load either fails typed or
    /// yields exactly the original bits (corruption hit redundant text).
    #[test]
    fn corrupted_numbers_never_load_silently(pos_seed in any::<u64>(), byte in any::<u8>()) {
        let cost = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.5];
        let doc = one_cell_csv([1.5, 2.5], cost);
        let numeric_start = doc.find("1.5").unwrap();
        let pos = numeric_start + (pos_seed as usize) % (doc.len() - numeric_start);
        let mut bytes = doc.clone().into_bytes();
        bytes[pos] = byte;
        // Non-UTF-8 mutations are not parseable documents; skip those.
        if let Ok(mutated) = String::from_utf8(bytes) {
            match TableBackend::from_csv_str(&mutated) {
                Err(
                    CostError::TableParse { .. }
                    | CostError::InvalidCostValue { .. }
                    | CostError::DuplicateEntry { .. }
                    | CostError::MissingEntry { .. },
                ) => {}
                Err(other) => prop_assert!(false, "untyped error {other:?}"),
                Ok(t) => {
                    // The mutation may legitimately keep the document
                    // well-formed (e.g. a digit changed, or a `#` turned a
                    // row into a comment). What must still hold: the loaded
                    // table is exactly what re-serialization describes — a
                    // stable fixed point, with no silent renormalisation.
                    let again = TableBackend::from_csv_str(&t.to_csv_string())
                        .expect("re-serialized tables always load");
                    prop_assert_eq!(again.calibration_digest(), t.calibration_digest());
                }
            }
        }
    }
}

// ---- explicit malformation taxonomy (the satellite checklist) ----

#[test]
fn nan_infinite_and_negative_costs_are_typed_errors() {
    for bad in ["NaN", "inf", "-inf", "-1.0"] {
        let doc = format!(
            "table,v1,t\nswitch,A,1.0,1.0\nlayer,l/elem:1/b1,A,{bad},2.0,3.0,4.0,5.0,6.0,0.5\n"
        );
        assert!(
            matches!(
                TableBackend::from_csv_str(&doc),
                Err(CostError::InvalidCostValue { line: 3, .. })
            ),
            "latency {bad} must be a typed domain error"
        );
    }
    // Utilisation above 1 is out of domain too.
    let doc = "table,v1,t\nswitch,A,1.0,1.0\nlayer,l/elem:1/b1,A,1.0,2.0,3.0,4.0,5.0,6.0,1.5\n";
    assert!(matches!(
        TableBackend::from_csv_str(doc),
        Err(CostError::InvalidCostValue { .. })
    ));
    // A zero switch drain rate would divide by zero downstream.
    let doc = "table,v1,t\nswitch,A,0.0,1.0\n";
    assert!(matches!(
        TableBackend::from_csv_str(doc),
        Err(CostError::InvalidCostValue { .. })
    ));
}

#[test]
fn duplicate_keys_are_typed_errors() {
    let doc = "table,v1,t\nswitch,A,1.0,1.0\n\
               layer,l/elem:1/b1,A,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n\
               layer,l/elem:1/b1,A,9.0,2.0,3.0,4.0,5.0,6.0,0.5\n";
    assert!(matches!(
        TableBackend::from_csv_str(doc),
        Err(CostError::DuplicateEntry { line: 4, .. })
    ));
    let doc = "table,v1,t\nswitch,A,1.0,1.0\nswitch,A,2.0,2.0\n";
    assert!(matches!(
        TableBackend::from_csv_str(doc),
        Err(CostError::DuplicateEntry { .. })
    ));
}

#[test]
fn missing_pairs_are_typed_errors() {
    // Two declared accelerators, but the layer covers only one.
    let doc = "table,v1,t\nswitch,A,1.0,1.0\nswitch,B,1.0,1.0\n\
               layer,l/elem:1/b1,A,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n";
    match TableBackend::from_csv_str(doc) {
        Err(CostError::MissingEntry { layer, acc }) => {
            assert_eq!(layer, "l/elem:1/b1");
            assert_eq!(acc, "B");
        }
        other => panic!("expected MissingEntry, got {other:?}"),
    }
    // A layer row naming an undeclared accelerator.
    let doc = "table,v1,t\nswitch,A,1.0,1.0\n\
               layer,l/elem:1/b1,X,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n";
    assert!(matches!(
        TableBackend::from_csv_str(doc),
        Err(CostError::MissingEntry { .. })
    ));
}

#[test]
fn malformed_rows_are_typed_errors() {
    // Wrong field counts, unknown kinds, missing header, bad numbers.
    for (doc, what) in [
        ("layer,l,A,1.0\n", "no header"),
        ("table,v2,t\n", "wrong version"),
        ("table,v1,t\nwat,1,2\n", "unknown row kind"),
        ("table,v1,t\nswitch,A,1.0\n", "short switch row"),
        (
            "table,v1,t\nswitch,A,1.0,1.0\nlayer,l/elem:1/b1,A,1.0,2.0\n",
            "short layer row",
        ),
        ("table,v1,t\nswitch,A,1.0,x,\n", "wrong switch field count"),
        ("table,v1,t\nswitch,A,1.0,abc\n", "non-numeric field"),
    ] {
        assert!(
            matches!(
                TableBackend::from_csv_str(doc),
                Err(CostError::TableParse { .. })
            ),
            "{what}: expected TableParse"
        );
    }
}

#[test]
fn malformed_gang_rows_are_typed_errors() {
    let base = "table,v1,t\nswitch,A,1.0,1.0\nswitch,B,1.0,1.0\n\
                layer,l/elem:1/b1,A,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n\
                layer,l/elem:1/b1,B,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n";
    // Single-member gang row.
    let doc = format!("{base}gang,l/elem:1/b1,A,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n");
    assert!(matches!(
        TableBackend::from_csv_str(&doc),
        Err(CostError::TableParse { .. })
    ));
    // Repeated member.
    let doc = format!("{base}gang,l/elem:1/b1,A+A,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n");
    assert!(matches!(
        TableBackend::from_csv_str(&doc),
        Err(CostError::TableParse { .. })
    ));
    // Undeclared member.
    let doc = format!("{base}gang,l/elem:1/b1,A+X,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n");
    assert!(matches!(
        TableBackend::from_csv_str(&doc),
        Err(CostError::MissingEntry { .. })
    ));
    // A valid gang row loads and answers in either member order … only
    // for the order it declares.
    let doc = format!("{base}gang,l/elem:1/b1,A+B,1.0,2.0,3.0,4.0,5.0,6.0,0.5\n");
    let t = TableBackend::from_csv_str(&doc).unwrap();
    let a = probe_acc();
    let b = dream_cost::AcceleratorConfig::new("B", 8, Dataflow::WeightStationary, 0.7, 1.0, 1)
        .unwrap();
    assert!(t.gang_cost(&probe_layer(), &[&a, &b]).is_ok());
    assert!(matches!(
        t.gang_cost(&probe_layer(), &[&b, &a]),
        Err(CostError::MissingEntry { .. })
    ));
}

#[test]
fn malformed_json_documents_are_typed_errors() {
    for (doc, what) in [
        ("{", "unbalanced"),
        ("{}", "missing schema"),
        (r#"{"schema": "dream-cost-table"}"#, "missing version"),
        (
            r#"{"schema": "dream-cost-table", "version": 2, "name": "t"}"#,
            "wrong version",
        ),
        (
            r#"{"schema": "dream-cost-table", "version": 1}"#,
            "missing name",
        ),
        (
            r#"{"schema": "dream-cost-table", "version": 1, "name": "t",
                "switch": [{"acc": "A", "bytes_per_ns": "1.0", "energy_pj_per_byte": 1.0}]}"#,
            "string where number expected",
        ),
        (
            r#"{"schema": "dream-cost-table", "version": 1, "name": "t",
                "switch": [{"acc": "A", "bytes_per_ns": NaN, "energy_pj_per_byte": 1.0}]}"#,
            "NaN literal is not JSON",
        ),
    ] {
        assert!(
            matches!(
                TableBackend::from_json_str(doc),
                Err(CostError::TableParse { .. })
            ),
            "{what}: expected TableParse"
        );
    }
}

#[test]
fn unencodable_table_names_are_typed_errors() {
    let platform =
        dream_cost::Platform::new("p", vec![probe_acc()]).expect("one-acc platform builds");
    let model = dream_cost::CostModel::paper_default();
    let layers = [probe_layer()];
    // Names that cannot survive a CSV round trip are rejected at export…
    for bad in ["my,table", "tabs\tinside\nname", " padded "] {
        assert!(
            matches!(
                TableBackend::derive(bad, &model, &platform, &layers),
                Err(CostError::Export { .. })
            ),
            "derive must reject name {bad:?}"
        );
    }
    // …and a JSON document cannot smuggle one in either.
    let doc = r#"{"schema": "dream-cost-table", "version": 1, "name": "my,table"}"#;
    assert!(matches!(
        TableBackend::from_json_str(doc),
        Err(CostError::TableParse { .. })
    ));
    // A good name still round-trips through both formats.
    let t = TableBackend::derive("good-name", &model, &platform, &layers).unwrap();
    assert_eq!(
        TableBackend::from_csv_str(&t.to_csv_string())
            .unwrap()
            .name(),
        "good-name"
    );
}

#[test]
fn empty_tables_load_but_answer_nothing() {
    let t = TableBackend::from_csv_str("table,v1,empty\n").unwrap();
    assert_eq!(t.layer_entry_count(), 0);
    assert!(matches!(
        t.layer_cost(&probe_layer(), &probe_acc()),
        Err(CostError::MissingEntry { .. })
    ));
}
