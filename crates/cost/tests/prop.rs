//! Property-based tests on the analytical cost model.

use dream_cost::{AcceleratorConfig, CostModel, Dataflow, Platform};
use dream_models::{Layer, LayerKind};
use proptest::prelude::*;

fn arb_layer() -> impl Strategy<Value = Layer> {
    prop_oneof![
        (1u32..200, 1u32..200, 1u32..64, 1u32..64, 1u32..4, 1u32..3).prop_map(
            |(h, w, ci, co, k, s)| Layer::new(
                "c",
                LayerKind::Conv2d {
                    in_h: h,
                    in_w: w,
                    in_c: ci * 2,
                    out_c: co * 2,
                    kernel: 2 * k - 1,
                    stride: s,
                    groups: 1,
                }
            )
            .unwrap()
        ),
        (1u32..64, 1u32..2048, 1u32..2048).prop_map(|(m, n, k)| Layer::new(
            "g",
            LayerKind::Gemm { m, n, k }
        )
        .unwrap()),
        (1u64..5_000_000)
            .prop_map(|e| Layer::new("e", LayerKind::Elementwise { elems: e }).unwrap()),
    ]
}

fn arb_acc() -> impl Strategy<Value = AcceleratorConfig> {
    (
        7u32..14, // PE count = 2^exp
        any::<bool>(),
        1u32..10,
    )
        .prop_map(|(exp, ws, bw)| {
            AcceleratorConfig::new(
                "p",
                1 << exp,
                if ws {
                    Dataflow::WeightStationary
                } else {
                    Dataflow::OutputStationary
                },
                0.7,
                f64::from(bw) * 10.0,
                4 << 20,
            )
            .unwrap()
        })
}

proptest! {
    /// Costs are finite and positive for every layer × accelerator pair,
    /// and utilisation is a true fraction.
    #[test]
    fn costs_are_finite_positive(layer in arb_layer(), acc in arb_acc()) {
        let model = CostModel::paper_default();
        let c = model.layer_cost(&layer, &acc);
        prop_assert!(c.latency_ns.is_finite() && c.latency_ns > 0.0);
        prop_assert!(c.energy_pj.is_finite() && c.energy_pj > 0.0);
        prop_assert!(c.compute_ns.is_finite() && c.compute_ns > 0.0);
        prop_assert!(c.dram_ns.is_finite() && c.dram_ns > 0.0);
        prop_assert!((0.0..=1.0).contains(&c.utilization));
        prop_assert!(c.latency_ns >= c.compute_ns.max(c.dram_ns));
    }

    /// Doubling the PE count never slows a layer down (same bandwidth).
    #[test]
    fn more_pes_never_hurt(layer in arb_layer(), exp in 7u32..13, ws in any::<bool>()) {
        let model = CostModel::paper_default();
        let df = if ws { Dataflow::WeightStationary } else { Dataflow::OutputStationary };
        let small =
            AcceleratorConfig::new("s", 1 << exp, df, 0.7, 45.0, 4 << 20).unwrap();
        let big =
            AcceleratorConfig::new("b", 1 << (exp + 1), df, 0.7, 45.0, 4 << 20).unwrap();
        let ls = model.layer_cost(&layer, &small).latency_ns;
        let lb = model.layer_cost(&layer, &big).latency_ns;
        prop_assert!(lb <= ls + 1e-6, "big {lb} > small {ls}");
    }

    /// More bandwidth never slows a layer down (same PEs).
    #[test]
    fn more_bandwidth_never_hurts(layer in arb_layer(), bw in 1.0f64..80.0) {
        let model = CostModel::paper_default();
        let slow = AcceleratorConfig::new(
            "s", 2048, Dataflow::WeightStationary, 0.7, bw, 4 << 20).unwrap();
        let fast = AcceleratorConfig::new(
            "f", 2048, Dataflow::WeightStationary, 0.7, bw * 2.0, 4 << 20).unwrap();
        prop_assert!(
            model.layer_cost(&layer, &fast).latency_ns
                <= model.layer_cost(&layer, &slow).latency_ns + 1e-6
        );
    }

    /// Gangs are never slower than their lead member, and a gang of one is
    /// exactly the single-accelerator cost.
    #[test]
    fn gang_cost_sane(layer in arb_layer(), exp in 8u32..12) {
        let model = CostModel::paper_default();
        let a =
            AcceleratorConfig::new("a", 1 << exp, Dataflow::WeightStationary, 0.7, 30.0, 4 << 20)
                .unwrap();
        let b =
            AcceleratorConfig::new("b", 1 << exp, Dataflow::WeightStationary, 0.7, 30.0, 4 << 20)
                .unwrap();
        let single = model.layer_cost(&layer, &a);
        let gang1 = model.gang_cost(&layer, &[&a]);
        prop_assert!((single.latency_ns - gang1.latency_ns).abs() < 1e-9);
        let gang2 = model.gang_cost(&layer, &[&a, &b]);
        // A gang has double resources but pays overhead; it must at least
        // never exceed the overhead-scaled single cost.
        prop_assert!(gang2.latency_ns <= single.latency_ns * 1.25 + 1e-6);
    }

    /// Switch cost is monotone in bytes and zero for zero bytes.
    #[test]
    fn switch_cost_monotone(inc in 0u64..10_000_000, out in 0u64..10_000_000) {
        let model = CostModel::paper_default();
        let acc =
            AcceleratorConfig::new("a", 2048, Dataflow::WeightStationary, 0.7, 45.0, 4 << 20)
                .unwrap();
        let a = model.switch_cost(inc, out, &acc);
        let b = model.switch_cost(inc + 1, out + 1, &acc);
        prop_assert!(b.latency_ns >= a.latency_ns);
        prop_assert!(b.energy_pj >= a.energy_pj);
        let zero = model.switch_cost(0, 0, &acc);
        prop_assert_eq!(zero.latency_ns, 0.0);
    }
}

#[test]
fn preset_tables_agree_with_direct_queries() {
    // Cross-check: preset accelerators queried directly equal the same
    // accelerators inside a platform (no hidden state).
    let platform = Platform::preset(dream_cost::PlatformPreset::Hetero4kWs1Os2);
    let model = CostModel::paper_default();
    let layer = Layer::new(
        "x",
        LayerKind::Conv2d {
            in_h: 56,
            in_w: 56,
            in_c: 64,
            out_c: 64,
            kernel: 3,
            stride: 1,
            groups: 1,
        },
    )
    .unwrap();
    for acc in platform.accelerators() {
        let a = model.layer_cost(&layer, acc);
        let b = model.layer_cost(&layer, acc);
        assert_eq!(a, b);
    }
}
