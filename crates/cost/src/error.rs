use std::error::Error;
use std::fmt;

/// Errors produced while configuring accelerators or platforms.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// An accelerator parameter was zero or non-finite.
    InvalidAccelerator {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A calibration parameter was outside its valid range.
    InvalidParams {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A platform was declared with no accelerators.
    EmptyPlatform,
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidAccelerator { reason } => {
                write!(f, "invalid accelerator: {reason}")
            }
            CostError::InvalidParams { reason } => write!(f, "invalid cost parameters: {reason}"),
            CostError::EmptyPlatform => write!(f, "platform has no accelerators"),
        }
    }
}

impl Error for CostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!CostError::EmptyPlatform.to_string().is_empty());
        assert!(CostError::InvalidParams { reason: "x".into() }
            .to_string()
            .contains('x'));
    }
}
