use std::error::Error;
use std::fmt;

/// Errors produced while configuring accelerators or platforms.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// An accelerator parameter was zero or non-finite.
    InvalidAccelerator {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A calibration parameter was outside its valid range.
    InvalidParams {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A platform was declared with no accelerators.
    EmptyPlatform,
    /// A cost-table document could not be parsed (wrong field count,
    /// unknown row kind, unparseable number, bad header).
    TableParse {
        /// 1-based line number (CSV) or 0 for document-level problems.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A cost-table row carried a value outside its domain (NaN, infinite,
    /// or negative cost; utilisation outside `[0, 1]`).
    InvalidCostValue {
        /// 1-based line number (CSV) or 0 for document-level problems.
        line: usize,
        /// Human-readable description of the offending value.
        reason: String,
    },
    /// Two cost-table rows share the same (layer, accelerator) key.
    DuplicateEntry {
        /// 1-based line number of the second occurrence (0 when unknown).
        line: usize,
        /// The duplicated key, rendered as `layer @ acc`.
        key: String,
    },
    /// A backend was asked about a (layer, accelerator) pair it does not
    /// cover, or a loaded table left a declared pair uncovered.
    MissingEntry {
        /// Layer signature (or a `<switch>`/`<gang:…>` marker for
        /// non-layer entries).
        layer: String,
        /// Accelerator name.
        acc: String,
    },
    /// A backend or layer set could not be exported to the table format
    /// (non-finite cost, a name the format cannot encode).
    Export {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidAccelerator { reason } => {
                write!(f, "invalid accelerator: {reason}")
            }
            CostError::InvalidParams { reason } => write!(f, "invalid cost parameters: {reason}"),
            CostError::EmptyPlatform => write!(f, "platform has no accelerators"),
            CostError::TableParse { line, reason } => {
                write!(f, "cost table parse error (line {line}): {reason}")
            }
            CostError::InvalidCostValue { line, reason } => {
                write!(f, "invalid cost value (line {line}): {reason}")
            }
            CostError::DuplicateEntry { line, key } => {
                write!(f, "duplicate cost-table entry (line {line}): {key}")
            }
            CostError::MissingEntry { layer, acc } => {
                write!(
                    f,
                    "no cost entry for layer `{layer}` on accelerator `{acc}`"
                )
            }
            CostError::Export { reason } => write!(f, "cost table export error: {reason}"),
        }
    }
}

impl Error for CostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!CostError::EmptyPlatform.to_string().is_empty());
        assert!(CostError::InvalidParams { reason: "x".into() }
            .to_string()
            .contains('x'));
    }
}
