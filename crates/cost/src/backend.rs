//! The pluggable cost-backend seam.
//!
//! The DREAM paper consumes per-(layer, accelerator) latency/energy tables
//! produced offline (by MAESTRO); everything above this crate only ever
//! *reads* costs. [`CostBackend`] is the seam that makes the producer
//! swappable: the analytical [`CostModel`](crate::CostModel) is the default
//! implementation, and [`TableBackend`](crate::TableBackend) serves the
//! same queries from an imported table.
//!
//! # Contract
//!
//! A backend is a **pure function** of its calibration: the same query must
//! return the same bits forever, and [`CostBackend::calibration_digest`]
//! must change whenever any answer could. The simulator resolves every
//! per-(layer, accelerator) quantity into flat tables at
//! `WorkloadSet::build` time and stamps them with the digest, so two
//! workloads built from backends with different digests are never
//! interchangeable — the engine rejects the mismatch — while the decision
//! hot path never pays a dynamic dispatch.
//!
//! Context-switch costs are linear in the switched bytes, so they cross the
//! seam as the two per-accelerator scalars of [`SwitchFactors`]; the
//! provided [`CostBackend::switch_cost`] combines them with **one fixed
//! operation sequence** shared by every backend, which is what lets an
//! imported table reproduce the analytical backend's switch costs
//! bit-for-bit.

use crate::{AcceleratorConfig, CostError, LayerCost, SwitchCost};
use dream_models::Layer;

/// Incremental 64-bit FNV-1a mixer for calibration digests (the same
/// primitive `dream-sim` uses for metrics fingerprints, duplicated here so
/// the dependency arrow keeps pointing upward).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    pub(crate) fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn mix_bytes(&mut self, bytes: &[u8]) {
        // Length first so "ab"+"c" and "a"+"bc" cannot collide.
        self.mix(bytes.len() as u64);
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// The two per-accelerator scalars a context-switch cost is linear in.
///
/// Every backend reports these, and the shared
/// [`CostBackend::switch_cost`] implementation combines them as
///
/// ```text
/// latency_ns = (incoming + outgoing) as f64 / bytes_per_ns
/// energy_pj  = (incoming + outgoing) as f64 * energy_pj_per_byte
/// ```
///
/// — exactly one division and one multiplication, so two backends that
/// report bit-equal factors produce bit-equal [`SwitchCost`]s for every
/// byte volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchFactors {
    /// DRAM drain rate paid by a switch, in bytes per nanosecond
    /// (numerically equal to the accelerator's GB/s share).
    pub bytes_per_ns: f64,
    /// DRAM energy per switched byte, in picojoules.
    pub energy_pj_per_byte: f64,
}

impl SwitchFactors {
    /// **The** switch-cost formula — the single implementation behind
    /// [`CostBackend::switch_cost`] and the simulator's build-time-
    /// resolved dispatch charges, so the two can never drift apart.
    pub fn cost(self, incoming_bytes: u64, outgoing_bytes: u64) -> SwitchCost {
        let bytes = (incoming_bytes + outgoing_bytes) as f64;
        SwitchCost {
            latency_ns: bytes / self.bytes_per_ns,
            energy_pj: bytes * self.energy_pj_per_byte,
        }
    }
}

/// A pluggable source of layer / gang / context-switch costs.
///
/// See the [module docs](self) for the purity and digest contract. All
/// methods are fallible because table-driven backends can be asked about
/// pairs they do not cover; the analytical backend never errors.
pub trait CostBackend: std::fmt::Debug + Send + Sync {
    /// Short stable identifier of the backend family (`"analytical"`,
    /// `"table"`); mixed into the calibration digest so two backends
    /// never alias even if their parameter bits coincide.
    fn kind(&self) -> &'static str;

    /// The cost of running `layer` on `acc`.
    ///
    /// # Errors
    ///
    /// [`CostError::MissingEntry`] when the backend has no answer for this
    /// (layer, accelerator) pair.
    fn layer_cost(&self, layer: &Layer, acc: &AcceleratorConfig) -> Result<LayerCost, CostError>;

    /// The cost of running `layer` fissioned across the ordered gang
    /// `members` (Planaria-style spatial fission).
    ///
    /// The member *order* is part of the query: resource fusion folds
    /// floating-point sums in member order, so reordering a gang may
    /// change low bits. Backends that cannot cost a gang return an error;
    /// callers on the decision path treat that as "this gang is not an
    /// option" (the engine counts the assignment invalid, Planaria falls
    /// back to single-accelerator allocations).
    ///
    /// # Errors
    ///
    /// [`CostError::MissingEntry`] for uncovered gangs; backends may also
    /// reject empty member lists as [`CostError::InvalidParams`].
    fn gang_cost(
        &self,
        layer: &Layer,
        members: &[&AcceleratorConfig],
    ) -> Result<LayerCost, CostError>;

    /// The per-byte context-switch factors of `acc`.
    ///
    /// # Errors
    ///
    /// [`CostError::MissingEntry`] when the backend does not cover `acc`.
    fn switch_factors(&self, acc: &AcceleratorConfig) -> Result<SwitchFactors, CostError>;

    /// The cost of a context switch flushing `outgoing_bytes` and
    /// fetching `incoming_bytes` through `acc`'s DRAM port.
    ///
    /// Always [`SwitchFactors::cost`] applied to
    /// [`switch_factors`](Self::switch_factors). **Contract: do not
    /// override.** The simulator resolves factors at build time and
    /// charges [`SwitchFactors::cost`] directly on dispatch, so an
    /// override would be silently ignored there and only surface as a
    /// reference-path divergence — which the conformance suite's
    /// factor-vs-cost cross-checks are there to catch.
    ///
    /// # Errors
    ///
    /// Propagates [`switch_factors`](Self::switch_factors)' error.
    fn switch_cost(
        &self,
        incoming_bytes: u64,
        outgoing_bytes: u64,
        acc: &AcceleratorConfig,
    ) -> Result<SwitchCost, CostError> {
        Ok(self
            .switch_factors(acc)?
            .cost(incoming_bytes, outgoing_bytes))
    }

    /// A stable digest of everything this backend's answers depend on:
    /// two backends with different digests may disagree on some query;
    /// two instances with equal digests must agree on every query,
    /// bit-for-bit. Implementations must mix their [`kind`](Self::kind)
    /// tag so distinct families never collide.
    fn calibration_digest(&self) -> u64;
}

impl CostBackend for crate::CostModel {
    fn kind(&self) -> &'static str {
        "analytical"
    }

    fn layer_cost(&self, layer: &Layer, acc: &AcceleratorConfig) -> Result<LayerCost, CostError> {
        Ok(crate::CostModel::layer_cost(self, layer, acc))
    }

    fn gang_cost(
        &self,
        layer: &Layer,
        members: &[&AcceleratorConfig],
    ) -> Result<LayerCost, CostError> {
        if members.is_empty() {
            return Err(CostError::InvalidParams {
                reason: "cannot cost a gang of zero accelerators".into(),
            });
        }
        Ok(crate::CostModel::gang_cost(self, layer, members))
    }

    fn switch_factors(&self, acc: &AcceleratorConfig) -> Result<SwitchFactors, CostError> {
        Ok(SwitchFactors {
            bytes_per_ns: acc.dram_gbps(),
            energy_pj_per_byte: self.params().dram_energy_pj_per_byte,
        })
    }

    fn calibration_digest(&self) -> u64 {
        let p = self.params();
        let mut h = Fnv64::new();
        h.mix_bytes(self.kind().as_bytes());
        for v in [
            p.mac_energy_pj,
            p.vector_op_energy_pj,
            p.sram_energy_pj_per_byte,
            p.dram_energy_pj_per_byte,
            p.layer_launch_ns,
            p.mapping_efficiency,
            p.gang_overhead,
        ] {
            h.mix(v.to_bits());
        }
        h.mix(p.psum_tile_depth);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, CostParams, Dataflow};
    use dream_models::LayerKind;

    fn acc() -> AcceleratorConfig {
        AcceleratorConfig::new("a", 2048, Dataflow::WeightStationary, 0.7, 45.0, 4 << 20).unwrap()
    }

    fn layer() -> Layer {
        Layer::new(
            "g",
            LayerKind::Gemm {
                m: 4,
                n: 256,
                k: 512,
            },
        )
        .unwrap()
    }

    #[test]
    fn trait_layer_cost_matches_inherent_bitwise() {
        let model = CostModel::paper_default();
        let a = CostModel::layer_cost(&model, &layer(), &acc());
        let b = CostBackend::layer_cost(&model, &layer(), &acc()).unwrap();
        assert_eq!(a.latency_ns.to_bits(), b.latency_ns.to_bits());
        assert_eq!(a.energy_pj.to_bits(), b.energy_pj.to_bits());
    }

    #[test]
    fn trait_switch_cost_matches_inherent_bitwise() {
        let model = CostModel::paper_default();
        let acc = acc();
        for (i, o) in [(0, 0), (1, 0), (12_345, 67_890), (u32::MAX as u64, 7)] {
            let a = CostModel::switch_cost(&model, i, o, &acc);
            let b = CostBackend::switch_cost(&model, i, o, &acc).unwrap();
            assert_eq!(a.latency_ns.to_bits(), b.latency_ns.to_bits(), "{i}/{o}");
            assert_eq!(a.energy_pj.to_bits(), b.energy_pj.to_bits(), "{i}/{o}");
        }
    }

    #[test]
    fn trait_gang_cost_matches_inherent_and_rejects_empty() {
        let model = CostModel::paper_default();
        let one = acc();
        let members = [&one, &one];
        let a = CostModel::gang_cost(&model, &layer(), &members);
        let b = CostBackend::gang_cost(&model, &layer(), &members).unwrap();
        assert_eq!(a.latency_ns.to_bits(), b.latency_ns.to_bits());
        assert!(matches!(
            CostBackend::gang_cost(&model, &layer(), &[]),
            Err(CostError::InvalidParams { .. })
        ));
    }

    #[test]
    fn digest_tracks_every_param_and_the_kind_tag() {
        let base = CostModel::paper_default().calibration_digest();
        let mut p = CostParams::paper_defaults();
        p.dram_energy_pj_per_byte += 1.0;
        assert_ne!(base, CostModel::new(p).unwrap().calibration_digest());
        let mut p = CostParams::paper_defaults();
        p.psum_tile_depth += 1;
        assert_ne!(base, CostModel::new(p).unwrap().calibration_digest());
        // Same params, same digest.
        assert_eq!(base, CostModel::paper_default().calibration_digest());
    }
}
