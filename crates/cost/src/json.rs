//! A minimal JSON reader for the cost-table document format.
//!
//! The workspace builds offline (no serde), so this module implements just
//! enough of RFC 8259 to load [`TableBackend`](crate::TableBackend)
//! documents: objects, arrays, strings (with `\"`/`\\`/`\/`/`\n`/`\t`/
//! `\r`/`\b`/`\f`/`\uXXXX` escapes), numbers, booleans, and null.
//!
//! Numbers are kept as their **raw source text**: the table layer parses
//! them with `f64::from_str`, which — combined with writing floats via
//! Rust's shortest-round-trip formatter — preserves every `f64` bit
//! across an export/import cycle.

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `{...}` — members in source order.
    Object(Vec<(String, Json)>),
    /// `[...]`.
    Array(Vec<Json>),
    /// `"..."` after escape resolution.
    Str(String),
    /// A number, as raw source text (e.g. `-1.5e3`).
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub(crate) fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (first match).
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's raw number text, if it is a number.
    pub(crate) fn as_num(&self) -> Option<&str> {
        match self {
            Json::Num(s) => Some(s),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Nesting levels beyond which parsing fails instead of recursing — the
/// table schema needs 3; a hostile document must get a typed error, not
/// a stack overflow.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of document".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogate pairs are not needed by this format;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("unpaired surrogate \\u{hex}"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("unknown escape `\\{}`", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() {
                saw_digit = true;
                self.pos += 1;
            } else if matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if !saw_digit {
            return Err(format!("malformed number at byte {start}"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        // Validate the shape now so the table layer can trust `as_num`.
        raw.parse::<f64>()
            .map_err(|_| format!("malformed number `{raw}` at byte {start}"))?;
        Ok(Json::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, -2.5e3, "x\n"], "b": {"c": true, "d": null}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_num(),
            Some("-2.5e3")
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
    }

    #[test]
    fn number_text_is_preserved_exactly() {
        let v = Json::parse("[0.1, 3000.0, 1e300, -0.0]").unwrap();
        let nums: Vec<&str> = v
            .as_array()
            .unwrap()
            .iter()
            .map(|n| n.as_num().unwrap())
            .collect();
        assert_eq!(nums, ["0.1", "3000.0", "1e300", "-0.0"]);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(200_000);
        assert!(Json::parse(&deep).is_err());
        let deep_objs = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&deep_objs).is_err());
        // The schema's actual depth (3–4 levels) stays comfortably legal.
        assert!(Json::parse("[[[[[{\"a\": [1]}]]]]]").is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "[1] extra",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        // Raw UTF-8 and \u escapes both decode.
        let v = Json::parse(r#""A\u00e9é""#).unwrap();
        assert_eq!(v.as_str(), Some("Aéé"));
    }
}
