use crate::{AcceleratorConfig, AcceleratorId, CostError, Dataflow};

/// The eight hardware platforms of the paper's Table 2, plus helpers for
/// constructing custom ones.
///
/// All presets share the paper's package-level parameters: 8 MiB of on-chip
/// SRAM and 90 GB/s of off-chip bandwidth at a 700 MHz clock, statically
/// partitioned across sub-accelerators in proportion to their PE share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlatformPreset {
    /// 4K PEs, homogeneous: 2 × WS(2K).
    Homo4kWs2,
    /// 4K PEs, homogeneous: 2 × OS(2K).
    Homo4kOs2,
    /// 4K PEs, heterogeneous: 1 WS(2K) + 2 OS(1K).
    Hetero4kWs1Os2,
    /// 4K PEs, heterogeneous: 1 OS(2K) + 2 WS(1K).
    Hetero4kOs1Ws2,
    /// 8K PEs, homogeneous: 2 × WS(4K).
    Homo8kWs2,
    /// 8K PEs, homogeneous: 2 × OS(4K).
    Homo8kOs2,
    /// 8K PEs, heterogeneous: 1 WS(4K) + 2 OS(2K).
    Hetero8kWs1Os2,
    /// 8K PEs, heterogeneous: 1 OS(4K) + 2 WS(2K).
    Hetero8kOs1Ws2,
}

impl PlatformPreset {
    /// All eight Table 2 configurations.
    pub fn all() -> [PlatformPreset; 8] {
        [
            PlatformPreset::Homo4kWs2,
            PlatformPreset::Homo4kOs2,
            PlatformPreset::Hetero4kWs1Os2,
            PlatformPreset::Hetero4kOs1Ws2,
            PlatformPreset::Homo8kWs2,
            PlatformPreset::Homo8kOs2,
            PlatformPreset::Hetero8kWs1Os2,
            PlatformPreset::Hetero8kOs1Ws2,
        ]
    }

    /// The four heterogeneous configurations (Figure 7's platforms).
    pub fn heterogeneous() -> [PlatformPreset; 4] {
        [
            PlatformPreset::Hetero4kWs1Os2,
            PlatformPreset::Hetero4kOs1Ws2,
            PlatformPreset::Hetero8kWs1Os2,
            PlatformPreset::Hetero8kOs1Ws2,
        ]
    }

    /// The four homogeneous configurations (Figure 8's platforms).
    pub fn homogeneous() -> [PlatformPreset; 4] {
        [
            PlatformPreset::Homo4kWs2,
            PlatformPreset::Homo4kOs2,
            PlatformPreset::Homo8kWs2,
            PlatformPreset::Homo8kOs2,
        ]
    }

    /// The name used in the paper's figures, e.g. `"4K 1WS+2OS"`.
    pub fn name(self) -> &'static str {
        match self {
            PlatformPreset::Homo4kWs2 => "4K 2WS",
            PlatformPreset::Homo4kOs2 => "4K 2OS",
            PlatformPreset::Hetero4kWs1Os2 => "4K 1WS+2OS",
            PlatformPreset::Hetero4kOs1Ws2 => "4K 1OS+2WS",
            PlatformPreset::Homo8kWs2 => "8K 2WS",
            PlatformPreset::Homo8kOs2 => "8K 2OS",
            PlatformPreset::Hetero8kWs1Os2 => "8K 1WS+2OS",
            PlatformPreset::Hetero8kOs1Ws2 => "8K 1OS+2WS",
        }
    }

    /// Total PE count (4096 or 8192).
    pub fn total_pes(self) -> u32 {
        match self {
            PlatformPreset::Homo4kWs2
            | PlatformPreset::Homo4kOs2
            | PlatformPreset::Hetero4kWs1Os2
            | PlatformPreset::Hetero4kOs1Ws2 => 4096,
            _ => 8192,
        }
    }
}

impl std::fmt::Display for PlatformPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A multi-accelerator platform: the set of sub-accelerators a scheduler
/// dispatches layers onto.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    accelerators: Vec<AcceleratorConfig>,
}

/// Package-level constants shared by all Table 2 presets.
const CLOCK_GHZ: f64 = 0.7;
const TOTAL_SRAM_BYTES: u64 = 8 << 20; // 8 MiB
const TOTAL_DRAM_GBPS: f64 = 90.0;

impl Platform {
    /// Builds a platform from explicit accelerator configs.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::EmptyPlatform`] if no accelerators are given.
    pub fn new(
        name: impl Into<String>,
        accelerators: Vec<AcceleratorConfig>,
    ) -> Result<Self, CostError> {
        if accelerators.is_empty() {
            return Err(CostError::EmptyPlatform);
        }
        Ok(Platform {
            name: name.into(),
            accelerators,
        })
    }

    /// Builds one of the Table 2 presets.
    pub fn preset(preset: PlatformPreset) -> Self {
        use Dataflow::{OutputStationary as Os, WeightStationary as Ws};
        let specs: Vec<(Dataflow, u32)> = match preset {
            PlatformPreset::Homo4kWs2 => vec![(Ws, 2048), (Ws, 2048)],
            PlatformPreset::Homo4kOs2 => vec![(Os, 2048), (Os, 2048)],
            PlatformPreset::Hetero4kWs1Os2 => vec![(Ws, 2048), (Os, 1024), (Os, 1024)],
            PlatformPreset::Hetero4kOs1Ws2 => vec![(Os, 2048), (Ws, 1024), (Ws, 1024)],
            PlatformPreset::Homo8kWs2 => vec![(Ws, 4096), (Ws, 4096)],
            PlatformPreset::Homo8kOs2 => vec![(Os, 4096), (Os, 4096)],
            PlatformPreset::Hetero8kWs1Os2 => vec![(Ws, 4096), (Os, 2048), (Os, 2048)],
            PlatformPreset::Hetero8kOs1Ws2 => vec![(Os, 4096), (Ws, 2048), (Ws, 2048)],
        };
        let total_pes: u32 = specs.iter().map(|&(_, p)| p).sum();
        let accelerators = specs
            .iter()
            .enumerate()
            .map(|(i, &(df, pe))| {
                let share = f64::from(pe) / f64::from(total_pes);
                AcceleratorConfig::new(
                    format!("{}-{}-{}", df.short_name(), pe, i),
                    pe,
                    df,
                    CLOCK_GHZ,
                    TOTAL_DRAM_GBPS * share,
                    ((TOTAL_SRAM_BYTES as f64) * share) as u64,
                )
                .expect("preset accelerator configs are valid")
            })
            .collect();
        Platform {
            name: preset.name().to_string(),
            accelerators,
        }
    }

    /// The platform's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sub-accelerators, indexable by [`AcceleratorId`].
    pub fn accelerators(&self) -> &[AcceleratorConfig] {
        &self.accelerators
    }

    /// Looks up an accelerator.
    pub fn accelerator(&self, id: AcceleratorId) -> Option<&AcceleratorConfig> {
        self.accelerators.get(id.0)
    }

    /// Number of sub-accelerators.
    pub fn len(&self) -> usize {
        self.accelerators.len()
    }

    /// Whether the platform has no accelerators (never true once built).
    pub fn is_empty(&self) -> bool {
        self.accelerators.is_empty()
    }

    /// All accelerator ids.
    pub fn ids(&self) -> impl Iterator<Item = AcceleratorId> {
        (0..self.accelerators.len()).map(AcceleratorId)
    }

    /// Total PE count.
    pub fn total_pes(&self) -> u32 {
        self.accelerators
            .iter()
            .map(AcceleratorConfig::pe_count)
            .sum()
    }

    /// Whether the platform mixes dataflows.
    pub fn is_heterogeneous(&self) -> bool {
        self.accelerators
            .windows(2)
            .any(|w| w[0].dataflow() != w[1].dataflow() || w[0].pe_count() != w[1].pe_count())
    }

    /// Aggregate peak MAC throughput in MACs/ns.
    pub fn peak_macs_per_ns(&self) -> f64 {
        self.accelerators
            .iter()
            .map(AcceleratorConfig::peak_macs_per_ns)
            .sum() // detlint: allow(float-fold) -- build-time fold over the fixed accelerator slice; dream-cost sits below dream-sim, so canonical_sum is unavailable
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} accelerators]",
            self.name,
            self.accelerators.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build_with_table2_totals() {
        for preset in PlatformPreset::all() {
            let p = Platform::preset(preset);
            assert_eq!(p.total_pes(), preset.total_pes(), "{preset}");
            assert!(!p.is_empty());
            // Bandwidth shares sum back to the package total.
            let bw: f64 = p.accelerators().iter().map(|a| a.dram_gbps()).sum();
            assert!((bw - TOTAL_DRAM_GBPS).abs() < 1e-6, "{preset}: {bw}");
        }
    }

    #[test]
    fn heterogeneous_flag_matches_presets() {
        assert!(!Platform::preset(PlatformPreset::Homo4kWs2).is_heterogeneous());
        assert!(Platform::preset(PlatformPreset::Hetero4kWs1Os2).is_heterogeneous());
        assert!(Platform::preset(PlatformPreset::Hetero8kOs1Ws2).is_heterogeneous());
    }

    #[test]
    fn hetero_presets_have_three_accelerators() {
        for preset in PlatformPreset::heterogeneous() {
            assert_eq!(Platform::preset(preset).len(), 3, "{preset}");
        }
        for preset in PlatformPreset::homogeneous() {
            assert_eq!(Platform::preset(preset).len(), 2, "{preset}");
        }
    }

    #[test]
    fn empty_platform_rejected() {
        assert!(matches!(
            Platform::new("e", vec![]),
            Err(CostError::EmptyPlatform)
        ));
    }

    #[test]
    fn accelerator_lookup() {
        let p = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        assert!(p.accelerator(AcceleratorId(0)).is_some());
        assert!(p.accelerator(AcceleratorId(3)).is_none());
        assert_eq!(p.ids().count(), 3);
    }

    #[test]
    fn bigger_platform_has_more_peak_throughput() {
        let small = Platform::preset(PlatformPreset::Homo4kWs2);
        let big = Platform::preset(PlatformPreset::Homo8kWs2);
        assert!(big.peak_macs_per_ns() > small.peak_macs_per_ns());
    }

    #[test]
    fn preset_names_match_paper_figures() {
        assert_eq!(PlatformPreset::Hetero4kWs1Os2.name(), "4K 1WS+2OS");
        assert_eq!(PlatformPreset::Homo8kOs2.name(), "8K 2OS");
        assert_eq!(PlatformPreset::all().len(), 8);
    }
}
