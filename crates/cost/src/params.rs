use crate::CostError;

/// Calibration constants of the analytical cost model.
///
/// Energy constants are per-operation / per-byte figures in picojoules,
/// in line with published numbers for 8-bit edge accelerators (a DRAM byte
/// costs roughly an order of magnitude more than an SRAM byte, which costs
/// several MAC operations). `mapping_efficiency` is the global derate that
/// accounts for everything a closed-form utilisation model misses (tile
/// fill/drain, bank conflicts, imperfect loop orders); it is tuned so the
/// paper's 4K-PE platforms are resource-constrained on the Table 3
/// scenarios while the 8K platforms are comfortable, matching the operating
/// points reported in §5.2 (see DESIGN.md §1 and EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Energy of one 8-bit MAC, pJ (scaled by operand width squared).
    pub mac_energy_pj: f64,
    /// Energy of one vector (non-MAC) op, pJ.
    pub vector_op_energy_pj: f64,
    /// Energy per SRAM byte access, pJ.
    pub sram_energy_pj_per_byte: f64,
    /// Energy per DRAM byte access, pJ.
    pub dram_energy_pj_per_byte: f64,
    /// Fixed per-layer launch overhead (descriptor setup, DMA kick-off), ns.
    pub layer_launch_ns: f64,
    /// Global PE-array mapping efficiency in `(0, 1]`.
    pub mapping_efficiency: f64,
    /// Latency penalty per *extra* gang member when a layer is fissioned
    /// across several sub-accelerators (Planaria-style), as a fraction.
    pub gang_overhead: f64,
    /// Reduction tile depth before a weight-stationary array spills partial
    /// sums to SRAM.
    pub psum_tile_depth: u64,
}

impl CostParams {
    /// The calibrated defaults used throughout the evaluation.
    pub fn paper_defaults() -> Self {
        CostParams {
            mac_energy_pj: 0.3,
            vector_op_energy_pj: 0.12,
            sram_energy_pj_per_byte: 1.0,
            dram_energy_pj_per_byte: 20.0,
            layer_launch_ns: 3_000.0,
            mapping_efficiency: 0.092,
            gang_overhead: 0.25,
            psum_tile_depth: 512,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParams`] if any energy/latency constant
    /// is negative or non-finite, or `mapping_efficiency` is outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), CostError> {
        let nonneg = [
            ("mac_energy_pj", self.mac_energy_pj),
            ("vector_op_energy_pj", self.vector_op_energy_pj),
            ("sram_energy_pj_per_byte", self.sram_energy_pj_per_byte),
            ("dram_energy_pj_per_byte", self.dram_energy_pj_per_byte),
            ("layer_launch_ns", self.layer_launch_ns),
            ("gang_overhead", self.gang_overhead),
        ];
        for (label, v) in nonneg {
            if !v.is_finite() || v < 0.0 {
                return Err(CostError::InvalidParams {
                    reason: format!("{label} must be finite and non-negative, got {v}"),
                });
            }
        }
        if !self.mapping_efficiency.is_finite()
            || self.mapping_efficiency <= 0.0
            || self.mapping_efficiency > 1.0
        {
            return Err(CostError::InvalidParams {
                reason: format!(
                    "mapping_efficiency must be in (0, 1], got {}",
                    self.mapping_efficiency
                ),
            });
        }
        if self.psum_tile_depth == 0 {
            return Err(CostError::InvalidParams {
                reason: "psum_tile_depth must be positive".into(),
            });
        }
        Ok(())
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CostParams::paper_defaults().validate().unwrap();
        CostParams::default().validate().unwrap();
    }

    #[test]
    fn bad_efficiency_rejected() {
        let mut p = CostParams::paper_defaults();
        p.mapping_efficiency = 0.0;
        assert!(p.validate().is_err());
        p.mapping_efficiency = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn negative_energy_rejected() {
        let mut p = CostParams::paper_defaults();
        p.dram_energy_pj_per_byte = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_psum_tile_rejected() {
        let mut p = CostParams::paper_defaults();
        p.psum_tile_depth = 0;
        assert!(p.validate().is_err());
    }
}
