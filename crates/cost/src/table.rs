//! The table-driven cost backend (MAESTRO-style import).
//!
//! The paper's deployment feeds DREAM per-(layer, accelerator) cost tables
//! produced offline by MAESTRO. [`TableBackend`] is that import path: a
//! [`CostBackend`] whose every answer is a lookup into a table loaded from
//! a text document — no arithmetic beyond the shared switch-cost formula.
//!
//! # Document formats
//!
//! A table can be stored as CSV or JSON; both carry the identical row
//! model and round-trip every `f64` **bit-exactly** (floats are written
//! with Rust's shortest-round-trip formatter and re-read with
//! `f64::from_str`).
//!
//! CSV (`#` starts a comment, the header row must come first):
//!
//! ```text
//! table,v1,<table name>
//! switch,<acc>,<bytes_per_ns>,<energy_pj_per_byte>
//! layer,<layer sig>,<acc>,<latency_ns>,<energy_pj>,<compute_ns>,<dram_ns>,<sram_bytes>,<dram_bytes>,<utilization>
//! gang,<layer sig>,<acc>+<acc>[+…],<same seven cost fields>
//! ```
//!
//! JSON mirrors the same rows:
//!
//! ```text
//! {"schema": "dream-cost-table", "version": 1, "name": "…",
//!  "switch": [{"acc": "…", "bytes_per_ns": …, "energy_pj_per_byte": …}, …],
//!  "layers": [{"layer": "…", "acc": "…", "latency_ns": …, …}, …],
//!  "gangs":  [{"layer": "…", "accs": ["…", "…"], "latency_ns": …, …}, …]}
//! ```
//!
//! Layer rows are keyed by [`layer_signature`], a compact string encoding
//! the layer's full identity (name, shape, operand width) — the stand-in
//! for MAESTRO's per-layer naming. Gang rows are keyed by the **ordered**
//! member list, because gang costing folds resource sums in member order.
//!
//! The loader is strict: malformed rows, non-finite / negative costs,
//! duplicate keys, undeclared accelerators, and layers that do not cover
//! every declared accelerator each produce a typed [`CostError`] — never
//! a panic or a silent default.
//!
//! # Generating import fixtures
//!
//! [`TableBackend::derive`] exports a table from *any* backend over a
//! platform and a layer set, so the analytical model can bootstrap its own
//! import fixtures (and a future real MAESTRO run only has to produce the
//! same document shape). Gang rows are emitted for every multi-member
//! subset of the platform: in **all member orders** for platforms of up
//! to [`GANG_PERMUTATION_LIMIT`] accelerators, and in the canonical
//! largest-first order (descending PE count, ties by platform index —
//! the order Planaria-style fission assembles gangs in) for platforms up
//! to [`GANG_SUBSET_LIMIT`]; larger platforms are rejected explicitly
//! rather than silently truncated.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use dream_models::{Layer, LayerKind};

use crate::backend::{CostBackend, Fnv64, SwitchFactors};
use crate::{AcceleratorConfig, CostError, LayerCost, Platform};

/// Largest platform (accelerator count) for which [`TableBackend::derive`]
/// emits gang rows in every member order.
pub const GANG_PERMUTATION_LIMIT: usize = 4;

/// Largest platform for which [`TableBackend::derive`] emits gang rows at
/// all (canonical order only above [`GANG_PERMUTATION_LIMIT`]).
pub const GANG_SUBSET_LIMIT: usize = 8;

/// The compact, unambiguous identity string of a layer — the key layer
/// rows use. Encodes the name, shape, and operand width, so two layers
/// with equal signatures are equal layers (and therefore cost the same on
/// every backend).
pub fn layer_signature(layer: &Layer) -> String {
    let kind = match layer.kind() {
        LayerKind::Conv2d {
            in_h,
            in_w,
            in_c,
            out_c,
            kernel,
            stride,
            groups,
        } => format!("conv:{in_h}x{in_w}x{in_c}:{out_c}:k{kernel}:s{stride}:g{groups}"),
        LayerKind::Gemm { m, n, k } => format!("gemm:{m}x{n}x{k}"),
        LayerKind::Pool {
            in_h,
            in_w,
            c,
            kernel,
            stride,
        } => format!("pool:{in_h}x{in_w}x{c}:k{kernel}:s{stride}"),
        LayerKind::Elementwise { elems } => format!("elem:{elems}"),
    };
    format!("{}/{kind}/b{}", layer.name(), layer.bytes_per_elem())
}

/// Marker used in [`CostError::MissingEntry`] for switch-factor lookups.
const SWITCH_MARKER: &str = "<switch>";

const LAYER_COST_FIELDS: [&str; 7] = [
    "latency_ns",
    "energy_pj",
    "compute_ns",
    "dram_ns",
    "sram_bytes",
    "dram_bytes",
    "utilization",
];

fn layer_cost_fields(c: &LayerCost) -> [f64; 7] {
    [
        c.latency_ns,
        c.energy_pj,
        c.compute_ns,
        c.dram_ns,
        c.sram_bytes,
        c.dram_bytes,
        c.utilization,
    ]
}

fn layer_cost_from_fields(f: [f64; 7]) -> LayerCost {
    LayerCost {
        latency_ns: f[0],
        energy_pj: f[1],
        compute_ns: f[2],
        dram_ns: f[3],
        sram_bytes: f[4],
        dram_bytes: f[5],
        utilization: f[6],
    }
}

/// Shortest-round-trip float rendering: `v.to_string()`-style output that
/// `f64::from_str` parses back to the identical bits.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// A table-driven [`CostBackend`]: every query is a lookup into rows
/// loaded from a CSV/JSON document (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct TableBackend {
    name: String,
    /// Per-accelerator switch factors; also the declared accelerator
    /// universe the completeness check runs against.
    switch: BTreeMap<String, SwitchFactors>,
    /// (layer signature, accelerator name) → cost.
    layers: BTreeMap<(String, String), LayerCost>,
    /// (layer signature, ordered member names joined by `+`) → cost.
    gangs: BTreeMap<(String, String), LayerCost>,
    digest: u64,
}

/// One parsed row before domain validation (`line` is the CSV line number,
/// or the 1-based entry ordinal for JSON documents).
struct Rows {
    name: String,
    switch: Vec<(usize, String, f64, f64)>,
    layers: Vec<(usize, String, String, [f64; 7])>,
    gangs: Vec<(usize, String, Vec<String>, [f64; 7])>,
}

impl TableBackend {
    /// The table's display name (carried through export/import).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared accelerator names, ascending.
    pub fn accelerator_names(&self) -> impl Iterator<Item = &str> {
        self.switch.keys().map(String::as_str)
    }

    /// Number of (layer, accelerator) rows.
    pub fn layer_entry_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of gang rows.
    pub fn gang_entry_count(&self) -> usize {
        self.gangs.len()
    }

    // ---- construction ----

    /// Derives a table from `backend` over `platform` and `layers` — the
    /// exporter that lets any backend (the analytical model today, a real
    /// MAESTRO run tomorrow) produce import fixtures. Duplicate layers
    /// (equal signatures) are folded into one row.
    ///
    /// # Errors
    ///
    /// [`CostError::Export`] for names the format cannot encode,
    /// non-finite costs, or platforms larger than [`GANG_SUBSET_LIMIT`];
    /// any error of the source backend is propagated.
    pub fn derive<'a>(
        name: impl Into<String>,
        backend: &dyn CostBackend,
        platform: &Platform,
        layers: impl IntoIterator<Item = &'a Layer>,
    ) -> Result<Self, CostError> {
        let name = name.into();
        if let Err(reason) = table_name_problem(&name) {
            return Err(CostError::Export {
                reason: format!("table name `{name}` {reason}"),
            });
        }
        let accs = platform.accelerators();
        let mut acc_names = Vec::with_capacity(accs.len());
        for acc in accs {
            check_name(acc.name(), "accelerator", &['+'])?;
            if acc_names.contains(&acc.name().to_string()) {
                return Err(CostError::Export {
                    reason: format!("platform declares accelerator `{}` twice", acc.name()),
                });
            }
            acc_names.push(acc.name().to_string());
        }

        let mut rows = Rows {
            name: name.clone(),
            switch: Vec::new(),
            layers: Vec::new(),
            gangs: Vec::new(),
        };
        for acc in accs {
            let f = backend.switch_factors(acc)?;
            check_finite(f.bytes_per_ns, "bytes_per_ns", acc.name())?;
            check_finite(f.energy_pj_per_byte, "energy_pj_per_byte", acc.name())?;
            rows.switch.push((
                0,
                acc.name().to_string(),
                f.bytes_per_ns,
                f.energy_pj_per_byte,
            ));
        }

        let mut seen = std::collections::BTreeSet::new();
        let mut distinct: Vec<&Layer> = Vec::new();
        for layer in layers {
            check_name(layer.name(), "layer", &[])?;
            if seen.insert(layer_signature(layer)) {
                distinct.push(layer);
            }
        }
        for layer in &distinct {
            let sig = layer_signature(layer);
            for acc in accs {
                let c = backend.layer_cost(layer, acc)?;
                check_cost_finite(&c, &sig, acc.name())?;
                rows.layers.push((
                    0,
                    sig.clone(),
                    acc.name().to_string(),
                    layer_cost_fields(&c),
                ));
            }
        }

        // Gang rows: every multi-member subset, ordered per the module
        // docs. Presets have ≤ 3 sub-accelerators, so this stays small.
        let gang_orders = gang_orders(platform)?;
        for order in &gang_orders {
            let members: Vec<&AcceleratorConfig> = order.iter().map(|&i| &accs[i]).collect();
            let names: Vec<String> = order.iter().map(|&i| acc_names[i].clone()).collect();
            for layer in &distinct {
                let sig = layer_signature(layer);
                let c = backend.gang_cost(layer, &members)?;
                check_cost_finite(&c, &sig, &names.join("+"))?;
                rows.gangs
                    .push((0, sig, names.clone(), layer_cost_fields(&c)));
            }
        }

        Self::build(rows)
    }

    /// Assembles and validates a table from parsed rows (shared by the
    /// CSV/JSON loaders and the exporter, so every path enforces the same
    /// domain rules).
    fn build(rows: Rows) -> Result<Self, CostError> {
        // The name must survive a CSV round trip (no field separator, no
        // line breaks, stable under the loader's line trimming) — a JSON
        // document could otherwise smuggle in a name that re-serializes
        // to an unloadable or silently altered CSV header.
        if let Err(reason) = table_name_problem(&rows.name) {
            return Err(CostError::TableParse {
                line: 0,
                reason: format!("table name `{}` {reason}", rows.name),
            });
        }
        let mut switch = BTreeMap::new();
        for (line, acc, bytes_per_ns, energy) in rows.switch {
            validate_value(line, "bytes_per_ns", bytes_per_ns, ValueDomain::Positive)?;
            validate_value(line, "energy_pj_per_byte", energy, ValueDomain::NonNegative)?;
            if switch
                .insert(
                    acc.clone(),
                    SwitchFactors {
                        bytes_per_ns,
                        energy_pj_per_byte: energy,
                    },
                )
                .is_some()
            {
                return Err(CostError::DuplicateEntry {
                    line,
                    key: format!("{SWITCH_MARKER} @ {acc}"),
                });
            }
        }

        let mut layers = BTreeMap::new();
        for (line, sig, acc, fields) in rows.layers {
            validate_cost_fields(line, &fields)?;
            if !switch.contains_key(&acc) {
                return Err(CostError::MissingEntry {
                    layer: SWITCH_MARKER.into(),
                    acc,
                });
            }
            if layers
                .insert((sig.clone(), acc.clone()), layer_cost_from_fields(fields))
                .is_some()
            {
                return Err(CostError::DuplicateEntry {
                    line,
                    key: format!("{sig} @ {acc}"),
                });
            }
        }

        let mut gangs = BTreeMap::new();
        for (line, sig, members, fields) in rows.gangs {
            validate_cost_fields(line, &fields)?;
            if members.len() < 2 {
                return Err(CostError::TableParse {
                    line,
                    reason: "gang rows need at least two members".into(),
                });
            }
            for (i, m) in members.iter().enumerate() {
                if !switch.contains_key(m) {
                    return Err(CostError::MissingEntry {
                        layer: SWITCH_MARKER.into(),
                        acc: m.clone(),
                    });
                }
                if members[..i].contains(m) {
                    return Err(CostError::TableParse {
                        line,
                        reason: format!("gang repeats member `{m}`"),
                    });
                }
            }
            let key = members.join("+");
            if gangs
                .insert((sig.clone(), key.clone()), layer_cost_from_fields(fields))
                .is_some()
            {
                return Err(CostError::DuplicateEntry {
                    line,
                    key: format!("{sig} @ {key}"),
                });
            }
        }

        // Completeness: every layer that appears must cover every declared
        // accelerator — a partial row set would otherwise only surface at
        // query time, deep inside a workload build.
        let layer_sigs: std::collections::BTreeSet<&String> =
            layers.keys().map(|(sig, _)| sig).collect();
        for sig in layer_sigs {
            for acc in switch.keys() {
                if !layers.contains_key(&(sig.clone(), acc.clone())) {
                    return Err(CostError::MissingEntry {
                        layer: sig.clone(),
                        acc: acc.clone(),
                    });
                }
            }
        }

        let mut h = Fnv64::new();
        h.mix_bytes(b"table");
        for (acc, f) in &switch {
            h.mix_bytes(acc.as_bytes());
            h.mix(f.bytes_per_ns.to_bits());
            h.mix(f.energy_pj_per_byte.to_bits());
        }
        for ((sig, acc), c) in &layers {
            h.mix_bytes(sig.as_bytes());
            h.mix_bytes(acc.as_bytes());
            for v in layer_cost_fields(c) {
                h.mix(v.to_bits());
            }
        }
        for ((sig, key), c) in &gangs {
            h.mix_bytes(sig.as_bytes());
            h.mix_bytes(key.as_bytes());
            for v in layer_cost_fields(c) {
                h.mix(v.to_bits());
            }
        }

        Ok(TableBackend {
            name: rows.name,
            switch,
            layers,
            gangs,
            digest: h.finish(),
        })
    }

    // ---- CSV ----

    /// Serialises the table to the CSV document format.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# dream-cost table (see crates/cost docs)");
        let _ = writeln!(out, "table,v1,{}", self.name);
        for (acc, f) in &self.switch {
            let _ = writeln!(
                out,
                "switch,{acc},{},{}",
                fmt_f64(f.bytes_per_ns),
                fmt_f64(f.energy_pj_per_byte)
            );
        }
        for ((sig, acc), c) in &self.layers {
            let _ = write!(out, "layer,{sig},{acc}");
            for v in layer_cost_fields(c) {
                let _ = write!(out, ",{}", fmt_f64(v));
            }
            let _ = writeln!(out);
        }
        for ((sig, key), c) in &self.gangs {
            let _ = write!(out, "gang,{sig},{key}");
            for v in layer_cost_fields(c) {
                let _ = write!(out, ",{}", fmt_f64(v));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Loads a table from the CSV document format.
    ///
    /// # Errors
    ///
    /// Typed [`CostError`]s for every malformation — see the
    /// [module docs](self) for the rules.
    pub fn from_csv_str(src: &str) -> Result<Self, CostError> {
        let mut rows = Rows {
            name: String::new(),
            switch: Vec::new(),
            layers: Vec::new(),
            gangs: Vec::new(),
        };
        let mut saw_header = false;
        for (idx, raw) in src.lines().enumerate() {
            let line = idx + 1;
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = text.split(',').collect();
            if !saw_header {
                if fields.len() != 3 || fields[0] != "table" || fields[1] != "v1" {
                    return Err(CostError::TableParse {
                        line,
                        reason: "expected header `table,v1,<name>`".into(),
                    });
                }
                rows.name = fields[2].to_string();
                saw_header = true;
                continue;
            }
            match fields[0] {
                "switch" => {
                    if fields.len() != 4 {
                        return Err(CostError::TableParse {
                            line,
                            reason: format!("switch rows have 4 fields, got {}", fields.len()),
                        });
                    }
                    rows.switch.push((
                        line,
                        fields[1].to_string(),
                        parse_f64(line, "bytes_per_ns", fields[2])?,
                        parse_f64(line, "energy_pj_per_byte", fields[3])?,
                    ));
                }
                "layer" => {
                    let fv = parse_cost_fields(line, &fields)?;
                    rows.layers
                        .push((line, fields[1].to_string(), fields[2].to_string(), fv));
                }
                "gang" => {
                    let fv = parse_cost_fields(line, &fields)?;
                    let members: Vec<String> = fields[2].split('+').map(str::to_string).collect();
                    rows.gangs.push((line, fields[1].to_string(), members, fv));
                }
                other => {
                    return Err(CostError::TableParse {
                        line,
                        reason: format!("unknown row kind `{other}`"),
                    });
                }
            }
        }
        if !saw_header {
            return Err(CostError::TableParse {
                line: 0,
                reason: "document has no `table,v1,<name>` header".into(),
            });
        }
        Self::build(rows)
    }

    // ---- JSON ----

    /// Serialises the table to the JSON document format.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": \"dream-cost-table\",\n  \"version\": 1,\n  \"name\": {},\n",
            json_str(&self.name)
        );
        let _ = writeln!(out, "  \"switch\": [");
        for (i, (acc, f)) in self.switch.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"acc\": {}, \"bytes_per_ns\": {}, \"energy_pj_per_byte\": {}}}{}",
                json_str(acc),
                fmt_f64(f.bytes_per_ns),
                fmt_f64(f.energy_pj_per_byte),
                if i + 1 < self.switch.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"layers\": [");
        for (i, ((sig, acc), c)) in self.layers.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"layer\": {}, \"acc\": {}",
                json_str(sig),
                json_str(acc)
            );
            for (field, v) in LAYER_COST_FIELDS.iter().zip(layer_cost_fields(c)) {
                let _ = write!(out, ", \"{field}\": {}", fmt_f64(v));
            }
            let _ = writeln!(
                out,
                "}}{}",
                if i + 1 < self.layers.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"gangs\": [");
        for (i, ((sig, key), c)) in self.gangs.iter().enumerate() {
            let members: Vec<String> = key.split('+').map(json_str).collect();
            let _ = write!(
                out,
                "    {{\"layer\": {}, \"accs\": [{}]",
                json_str(sig),
                members.join(", ")
            );
            for (field, v) in LAYER_COST_FIELDS.iter().zip(layer_cost_fields(c)) {
                let _ = write!(out, ", \"{field}\": {}", fmt_f64(v));
            }
            let _ = writeln!(out, "}}{}", if i + 1 < self.gangs.len() { "," } else { "" });
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Loads a table from the JSON document format. Error `line` numbers
    /// refer to the 1-based entry ordinal within its array.
    ///
    /// # Errors
    ///
    /// The same typed [`CostError`]s as [`from_csv_str`](Self::from_csv_str).
    pub fn from_json_str(src: &str) -> Result<Self, CostError> {
        let parse_err = |reason: String| CostError::TableParse { line: 0, reason };
        let doc = crate::json::Json::parse(src).map_err(parse_err)?;
        if doc.get("schema").and_then(|s| s.as_str()) != Some("dream-cost-table") {
            return Err(CostError::TableParse {
                line: 0,
                reason: "missing `\"schema\": \"dream-cost-table\"`".into(),
            });
        }
        if doc.get("version").and_then(|v| v.as_num()) != Some("1") {
            return Err(CostError::TableParse {
                line: 0,
                reason: "unsupported or missing `version` (expected 1)".into(),
            });
        }
        let name = doc
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| CostError::TableParse {
                line: 0,
                reason: "missing string `name`".into(),
            })?
            .to_string();

        let arr = |key: &str| -> Result<&[crate::json::Json], CostError> {
            match doc.get(key) {
                None => Ok(&[]),
                Some(v) => v.as_array().ok_or_else(|| CostError::TableParse {
                    line: 0,
                    reason: format!("`{key}` must be an array"),
                }),
            }
        };
        let get_str =
            |line: usize, entry: &crate::json::Json, key: &str| -> Result<String, CostError> {
                entry
                    .get(key)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| CostError::TableParse {
                        line,
                        reason: format!("entry needs a string `{key}`"),
                    })
            };
        let get_f64 =
            |line: usize, entry: &crate::json::Json, key: &str| -> Result<f64, CostError> {
                let raw = entry.get(key).and_then(|v| v.as_num()).ok_or_else(|| {
                    CostError::TableParse {
                        line,
                        reason: format!("entry needs a number `{key}`"),
                    }
                })?;
                parse_f64(line, "value", raw)
            };

        let mut rows = Rows {
            name,
            switch: Vec::new(),
            layers: Vec::new(),
            gangs: Vec::new(),
        };
        for (i, entry) in arr("switch")?.iter().enumerate() {
            let line = i + 1;
            rows.switch.push((
                line,
                get_str(line, entry, "acc")?,
                get_f64(line, entry, "bytes_per_ns")?,
                get_f64(line, entry, "energy_pj_per_byte")?,
            ));
        }
        for (i, entry) in arr("layers")?.iter().enumerate() {
            let line = i + 1;
            let mut fields = [0.0; 7];
            for (slot, key) in fields.iter_mut().zip(LAYER_COST_FIELDS) {
                *slot = get_f64(line, entry, key)?;
            }
            rows.layers.push((
                line,
                get_str(line, entry, "layer")?,
                get_str(line, entry, "acc")?,
                fields,
            ));
        }
        for (i, entry) in arr("gangs")?.iter().enumerate() {
            let line = i + 1;
            let members = entry
                .get("accs")
                .and_then(|v| v.as_array())
                .ok_or_else(|| CostError::TableParse {
                    line,
                    reason: "gang entry needs an `accs` array".into(),
                })?
                .iter()
                .map(|m| {
                    m.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| CostError::TableParse {
                            line,
                            reason: "gang members must be strings".into(),
                        })
                })
                .collect::<Result<Vec<String>, CostError>>()?;
            let mut fields = [0.0; 7];
            for (slot, key) in fields.iter_mut().zip(LAYER_COST_FIELDS) {
                *slot = get_f64(line, entry, key)?;
            }
            rows.gangs
                .push((line, get_str(line, entry, "layer")?, members, fields));
        }
        Self::build(rows)
    }

    // ---- file IO ----

    /// Loads a table from a file, choosing the format by extension
    /// (`.json` → JSON, anything else → CSV).
    ///
    /// # Errors
    ///
    /// IO failures surface as [`CostError::TableParse`] (line 0); format
    /// errors as from the string loaders.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CostError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| CostError::TableParse {
            line: 0,
            reason: format!("cannot read {}: {e}", path.display()),
        })?;
        if path.extension().is_some_and(|e| e == "json") {
            Self::from_json_str(&src)
        } else {
            Self::from_csv_str(&src)
        }
    }

    /// Writes the table to a file, choosing the format by extension
    /// (`.json` → JSON, anything else → CSV).
    ///
    /// # Errors
    ///
    /// IO failures surface as [`CostError::Export`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CostError> {
        let path = path.as_ref();
        let doc = if path.extension().is_some_and(|e| e == "json") {
            self.to_json_string()
        } else {
            self.to_csv_string()
        };
        std::fs::write(path, doc).map_err(|e| CostError::Export {
            reason: format!("cannot write {}: {e}", path.display()),
        })
    }
}

impl CostBackend for TableBackend {
    fn kind(&self) -> &'static str {
        "table"
    }

    fn layer_cost(&self, layer: &Layer, acc: &AcceleratorConfig) -> Result<LayerCost, CostError> {
        let sig = layer_signature(layer);
        self.layers
            .get(&(sig.clone(), acc.name().to_string()))
            .copied()
            .ok_or_else(|| CostError::MissingEntry {
                layer: sig,
                acc: acc.name().to_string(),
            })
    }

    fn gang_cost(
        &self,
        layer: &Layer,
        members: &[&AcceleratorConfig],
    ) -> Result<LayerCost, CostError> {
        match members {
            [] => Err(CostError::InvalidParams {
                reason: "cannot cost a gang of zero accelerators".into(),
            }),
            // A single-member "gang" is the layer itself: the analytical
            // model's fission penalty is exactly 1.0 there, so the layer
            // row is the bit-identical answer.
            [only] => self.layer_cost(layer, only),
            _ => {
                let sig = layer_signature(layer);
                let key = members
                    .iter()
                    .map(|m| m.name())
                    .collect::<Vec<_>>()
                    .join("+");
                self.gangs.get(&(sig.clone(), key.clone())).copied().ok_or(
                    CostError::MissingEntry {
                        layer: sig,
                        acc: key,
                    },
                )
            }
        }
    }

    fn switch_factors(&self, acc: &AcceleratorConfig) -> Result<SwitchFactors, CostError> {
        self.switch
            .get(acc.name())
            .copied()
            .ok_or_else(|| CostError::MissingEntry {
                layer: SWITCH_MARKER.into(),
                acc: acc.name().to_string(),
            })
    }

    fn calibration_digest(&self) -> u64 {
        self.digest
    }
}

/// The member orders gang rows are exported for — see the module docs.
fn gang_orders(platform: &Platform) -> Result<Vec<Vec<usize>>, CostError> {
    let n = platform.len();
    if n < 2 {
        return Ok(Vec::new());
    }
    if n > GANG_SUBSET_LIMIT {
        return Err(CostError::Export {
            reason: format!(
                "cannot enumerate gang rows for {n} accelerators (limit {GANG_SUBSET_LIMIT})"
            ),
        });
    }
    let mut orders = Vec::new();
    for mask in 1u32..(1 << n) {
        let members: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
        if members.len() < 2 {
            continue;
        }
        if n <= GANG_PERMUTATION_LIMIT {
            permutations(&members, &mut Vec::new(), &mut orders);
        } else {
            // Canonical largest-first order: descending PE count, ties by
            // ascending platform index — how Planaria assembles gangs.
            let mut canon = members;
            canon.sort_by_key(|&i| (std::cmp::Reverse(platform.accelerators()[i].pe_count()), i));
            orders.push(canon);
        }
    }
    Ok(orders)
}

fn permutations(rest: &[usize], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if rest.is_empty() {
        out.push(prefix.clone());
        return;
    }
    for (i, &x) in rest.iter().enumerate() {
        let mut remaining = rest.to_vec();
        remaining.remove(i);
        prefix.push(x);
        permutations(&remaining, prefix, out);
        prefix.pop();
    }
}

/// Why `name` cannot serve as a table name in the text formats, if it
/// cannot: it must contain no CSV field separator or control characters,
/// and must be stable under the CSV loader's per-line trimming.
fn table_name_problem(name: &str) -> Result<(), &'static str> {
    if name.contains(',') {
        return Err("contains the CSV field separator");
    }
    if name.chars().any(char::is_control) {
        return Err("contains control characters");
    }
    if name.trim() != name {
        return Err("has leading/trailing whitespace the loader would trim away");
    }
    Ok(())
}

fn check_name(name: &str, what: &str, extra_forbidden: &[char]) -> Result<(), CostError> {
    let bad = name.is_empty()
        || name
            .chars()
            .any(|c| c == ',' || c == '/' || c.is_whitespace() || c.is_control())
        || name.chars().any(|c| extra_forbidden.contains(&c));
    if bad {
        return Err(CostError::Export {
            reason: format!("{what} name `{name}` cannot be encoded in the table format"),
        });
    }
    Ok(())
}

fn check_finite(v: f64, field: &str, acc: &str) -> Result<(), CostError> {
    if !v.is_finite() {
        return Err(CostError::Export {
            reason: format!("{field} for `{acc}` is not finite ({v})"),
        });
    }
    Ok(())
}

fn check_cost_finite(c: &LayerCost, sig: &str, acc: &str) -> Result<(), CostError> {
    for (field, v) in LAYER_COST_FIELDS.iter().zip(layer_cost_fields(c)) {
        if !v.is_finite() {
            return Err(CostError::Export {
                reason: format!("{field} for `{sig}` on `{acc}` is not finite ({v})"),
            });
        }
    }
    Ok(())
}

enum ValueDomain {
    /// Finite and `> 0` (divisors).
    Positive,
    /// Finite and `>= 0`.
    NonNegative,
    /// Finite, `>= 0`, and `<= 1`.
    UnitInterval,
}

fn validate_value(line: usize, field: &str, v: f64, domain: ValueDomain) -> Result<(), CostError> {
    let ok = match domain {
        ValueDomain::Positive => v.is_finite() && v > 0.0,
        ValueDomain::NonNegative => v.is_finite() && v >= 0.0,
        ValueDomain::UnitInterval => v.is_finite() && (0.0..=1.0).contains(&v),
    };
    if !ok {
        return Err(CostError::InvalidCostValue {
            line,
            reason: format!("{field} = {v} is outside its domain"),
        });
    }
    Ok(())
}

fn validate_cost_fields(line: usize, fields: &[f64; 7]) -> Result<(), CostError> {
    for (name, &v) in LAYER_COST_FIELDS.iter().zip(fields) {
        let domain = if *name == "utilization" {
            ValueDomain::UnitInterval
        } else {
            ValueDomain::NonNegative
        };
        validate_value(line, name, v, domain)?;
    }
    Ok(())
}

fn parse_f64(line: usize, field: &str, raw: &str) -> Result<f64, CostError> {
    // `from_str` accepts `NaN`/`inf` spellings; those parse fine here and
    // are rejected later by the domain validation, keeping "malformed"
    // and "out of domain" errors distinct.
    raw.parse::<f64>().map_err(|_| CostError::TableParse {
        line,
        reason: format!("{field}: `{raw}` is not a number"),
    })
}

fn parse_cost_fields(line: usize, fields: &[&str]) -> Result<[f64; 7], CostError> {
    if fields.len() != 10 {
        return Err(CostError::TableParse {
            line,
            reason: format!("cost rows have 10 fields, got {}", fields.len()),
        });
    }
    let mut out = [0.0; 7];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = parse_f64(line, LAYER_COST_FIELDS[i], fields[3 + i])?;
    }
    Ok(out)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostModel, PlatformPreset};
    use dream_models::LayerKind;

    fn layers() -> Vec<Layer> {
        vec![
            Layer::new(
                "conv1",
                LayerKind::Conv2d {
                    in_h: 56,
                    in_w: 56,
                    in_c: 64,
                    out_c: 128,
                    kernel: 3,
                    stride: 1,
                    groups: 1,
                },
            )
            .unwrap(),
            Layer::with_bytes(
                "fc",
                LayerKind::Gemm {
                    m: 1,
                    n: 1000,
                    k: 512,
                },
                2,
            )
            .unwrap(),
        ]
    }

    fn derived() -> TableBackend {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let model = CostModel::paper_default();
        TableBackend::derive("t", &model, &platform, &layers()).unwrap()
    }

    #[test]
    fn signatures_distinguish_shape_and_width() {
        let ls = layers();
        assert_eq!(
            layer_signature(&ls[0]),
            "conv1/conv:56x56x64:128:k3:s1:g1/b1"
        );
        assert_eq!(layer_signature(&ls[1]), "fc/gemm:1x1000x512/b2");
        let narrow = Layer::new(
            "fc",
            LayerKind::Gemm {
                m: 1,
                n: 1000,
                k: 512,
            },
        )
        .unwrap();
        assert_ne!(layer_signature(&ls[1]), layer_signature(&narrow));
    }

    #[test]
    fn derive_covers_every_pair_and_gang_order() {
        let t = derived();
        // 2 layers × 3 accelerators.
        assert_eq!(t.layer_entry_count(), 6);
        // Ordered multi-member subsets of 3 accelerators: P(3,2)+P(3,3)
        // = 6 + 6 = 12 per layer.
        assert_eq!(t.gang_entry_count(), 24);
        assert_eq!(t.accelerator_names().count(), 3);
    }

    #[test]
    fn duplicate_layers_fold_into_one_row() {
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let model = CostModel::paper_default();
        let mut ls = layers();
        ls.extend(layers());
        let t = TableBackend::derive("t", &model, &platform, &ls).unwrap();
        assert_eq!(t.layer_entry_count(), 4);
    }

    #[test]
    fn unknown_layer_and_acc_queries_are_typed_errors() {
        let t = derived();
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let acc0 = &platform.accelerators()[0];
        let stranger = Layer::new("x", LayerKind::Elementwise { elems: 9 }).unwrap();
        assert!(matches!(
            t.layer_cost(&stranger, acc0),
            Err(CostError::MissingEntry { .. })
        ));
        let foreign =
            AcceleratorConfig::new("nope", 8, crate::Dataflow::WeightStationary, 0.7, 1.0, 1)
                .unwrap();
        assert!(matches!(
            t.layer_cost(&layers()[0], &foreign),
            Err(CostError::MissingEntry { .. })
        ));
        assert!(matches!(
            t.switch_factors(&foreign),
            Err(CostError::MissingEntry { .. })
        ));
        assert!(matches!(
            t.gang_cost(&layers()[0], &[]),
            Err(CostError::InvalidParams { .. })
        ));
    }

    #[test]
    fn csv_and_json_round_trips_are_bit_exact() {
        let t = derived();
        let from_csv = TableBackend::from_csv_str(&t.to_csv_string()).unwrap();
        let from_json = TableBackend::from_json_str(&t.to_json_string()).unwrap();
        for re in [&from_csv, &from_json] {
            assert_eq!(re.name(), t.name());
            assert_eq!(re.calibration_digest(), t.calibration_digest());
            assert_eq!(re.layers, t.layers);
            assert_eq!(re.gangs, t.gangs);
            assert_eq!(re.switch, t.switch);
        }
    }

    #[test]
    fn gang_orders_cover_permutations_on_small_platforms() {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let orders = gang_orders(&platform).unwrap();
        assert_eq!(orders.len(), 12);
        assert!(orders.contains(&vec![0, 1]));
        assert!(orders.contains(&vec![1, 0]));
        assert!(orders.contains(&vec![2, 1, 0]));
    }
}
