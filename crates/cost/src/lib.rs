//! Analytical accelerator cost model for the DREAM reproduction.
//!
//! The paper feeds DREAM per-(layer, accelerator) latency and energy
//! estimates produced offline by MAESTRO. This crate is the stand-in: an
//! analytical model of spatial DNN accelerators with weight-stationary
//! (NVDLA-inspired) and output-stationary (ShiDianNao-inspired) dataflows.
//!
//! The model captures exactly the effects the scheduler cares about:
//!
//! * **PE-array utilisation** depends on how a layer's parallelism matches
//!   the dataflow's spatial mapping (depthwise convolutions under-utilise a
//!   weight-stationary array; tiny feature maps under-utilise an
//!   output-stationary one), so heterogeneous platforms genuinely prefer
//!   different accelerators for different layers.
//! * **Roofline latency**: compute time vs. DRAM streaming time, whichever
//!   dominates — GEMV-shaped layers (GNMT) become bandwidth-bound.
//! * **Dataflow-dependent SRAM traffic** drives the energy asymmetry
//!   between dataflows (weight re-fetch for output-stationary arrays,
//!   input re-fetch and partial-sum spills for weight-stationary ones).
//! * **Context-switch cost**: flushing the outgoing model's activations and
//!   fetching the incoming model's working set through DRAM.
//!
//! Absolute numbers are calibrated, not validated against RTL — see
//! `DESIGN.md` §1 for why this preserves the paper's conclusions (the
//! scheduler consumes only *relative* costs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod error;
mod estimate;
mod params;
mod platform;

pub use accel::{AcceleratorConfig, AcceleratorId, Dataflow};
pub use error::CostError;
pub use estimate::{CostModel, LayerCost, SwitchCost};
pub use params::CostParams;
pub use platform::{Platform, PlatformPreset};
