//! Analytical accelerator cost model for the DREAM reproduction.
//!
//! The paper feeds DREAM per-(layer, accelerator) latency and energy
//! estimates produced offline by MAESTRO. This crate is the stand-in: an
//! analytical model of spatial DNN accelerators with weight-stationary
//! (NVDLA-inspired) and output-stationary (ShiDianNao-inspired) dataflows.
//!
//! The model captures exactly the effects the scheduler cares about:
//!
//! * **PE-array utilisation** depends on how a layer's parallelism matches
//!   the dataflow's spatial mapping (depthwise convolutions under-utilise a
//!   weight-stationary array; tiny feature maps under-utilise an
//!   output-stationary one), so heterogeneous platforms genuinely prefer
//!   different accelerators for different layers.
//! * **Roofline latency**: compute time vs. DRAM streaming time, whichever
//!   dominates — GEMV-shaped layers (GNMT) become bandwidth-bound.
//! * **Dataflow-dependent SRAM traffic** drives the energy asymmetry
//!   between dataflows (weight re-fetch for output-stationary arrays,
//!   input re-fetch and partial-sum spills for weight-stationary ones).
//! * **Context-switch cost**: flushing the outgoing model's activations and
//!   fetching the incoming model's working set through DRAM.
//!
//! Absolute numbers are calibrated, not validated against RTL — see
//! `DESIGN.md` §1 for why this preserves the paper's conclusions (the
//! scheduler consumes only *relative* costs).
//!
//! # Pluggable backends
//!
//! Cost *consumers* (the simulator's offline tables, the schedulers'
//! on-demand gang queries) go through the [`CostBackend`] trait rather
//! than the concrete model:
//!
//! * [`CostModel`] — the analytical model above, the default backend.
//! * [`TableBackend`] — a table-driven backend that answers every query
//!   from a per-(layer, accelerator) table loaded from CSV/JSON (the
//!   MAESTRO import path). [`TableBackend::derive`] exports such a table
//!   from any backend, so the analytical model bootstraps its own import
//!   fixtures.
//!
//! The contract (see [`backend`]): a backend is a pure function of its
//! calibration, [`CostBackend::calibration_digest`] changes whenever any
//! answer could, and context-switch costs cross the seam as per-byte
//! [`SwitchFactors`] combined by one shared formula — which is why a
//! table exported from the analytical backend and re-imported reproduces
//! it **bit-for-bit** (`tests/backend_conformance.rs` proves it per cell,
//! `tests/backend_fingerprint.rs` at the workspace root proves it on
//! end-to-end simulation metrics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
pub mod backend;
mod error;
mod estimate;
mod json;
mod params;
mod platform;
pub mod table;

pub use accel::{AcceleratorConfig, AcceleratorId, Dataflow};
pub use backend::{CostBackend, SwitchFactors};
pub use error::CostError;
pub use estimate::{CostModel, LayerCost, SwitchCost};
pub use params::CostParams;
pub use platform::{Platform, PlatformPreset};
pub use table::{layer_signature, TableBackend};
