use crate::{AcceleratorConfig, CostError, CostParams, Dataflow};
use dream_models::Layer;

/// The full cost breakdown of running one layer on one accelerator.
///
/// Besides the headline `latency_ns` / `energy_pj`, intermediate results are
/// exposed so callers (and tests) can see *why* a layer costs what it costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// End-to-end latency in nanoseconds (roofline + launch overhead).
    pub latency_ns: f64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Pure compute time in nanoseconds.
    pub compute_ns: f64,
    /// DRAM streaming time in nanoseconds.
    pub dram_ns: f64,
    /// Bytes moved through SRAM (dataflow dependent).
    pub sram_bytes: f64,
    /// Bytes moved through DRAM.
    pub dram_bytes: f64,
    /// Effective spatial utilisation of the PE array in `[0, 1]`
    /// (before the global mapping-efficiency derate).
    pub utilization: f64,
}

/// Latency and energy of a context switch on one accelerator: flushing the
/// outgoing task's live activations and fetching the incoming task's
/// working set through DRAM (§3.4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwitchCost {
    /// Extra latency in nanoseconds.
    pub latency_ns: f64,
    /// Extra energy in picojoules.
    pub energy_pj: f64,
}

/// The analytical cost model (MAESTRO stand-in).
///
/// Stateless and cheap: a [`LayerCost`] query is a handful of floating-point
/// operations, so schedulers may call it online; offline tables are built by
/// the simulator on top of it.
#[derive(Debug, Clone)]
pub struct CostModel {
    params: CostParams,
}

impl CostModel {
    /// Creates a cost model with the given calibration.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParams`] if the calibration is invalid.
    pub fn new(params: CostParams) -> Result<Self, CostError> {
        params.validate()?;
        Ok(CostModel { params })
    }

    /// A cost model with the calibrated paper defaults.
    pub fn paper_default() -> Self {
        CostModel {
            params: CostParams::paper_defaults(),
        }
    }

    /// The calibration in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Spatial utilisation of a `pe_count`-wide array offered `work` units
    /// of parallelism: `work / (ceil(work / P) · P)` — 1.0 when the work
    /// tiles perfectly, `work / P` when the array is under-filled, and the
    /// usual quantisation loss in between.
    fn fractional_utilization(work: u64, pe_count: u32) -> f64 {
        debug_assert!(work > 0, "layers always expose positive parallel work");
        let p = f64::from(pe_count);
        let work = work as f64;
        let tiles = (work / p).ceil();
        work / (tiles * p)
    }

    /// Estimates the cost of `layer` on `acc`.
    pub fn layer_cost(&self, layer: &Layer, acc: &AcceleratorConfig) -> LayerCost {
        let s = layer.stats();
        let p = &self.params;

        let spatial_work = match acc.dataflow() {
            Dataflow::WeightStationary => s.ws_parallel_work,
            Dataflow::OutputStationary => s.out_elems,
        };
        let utilization = Self::fractional_utilization(spatial_work.max(1), acc.pe_count());

        let work = (s.macs + s.vector_ops) as f64;
        let throughput =
            f64::from(acc.pe_count()) * utilization * p.mapping_efficiency * acc.clock_ghz();
        let compute_ns = work / throughput;

        let dram_bytes = (s.weight_bytes + s.input_bytes + s.output_bytes) as f64;
        let dram_ns = dram_bytes / acc.dram_gbps();

        let kernel_area = s.kernel_area as f64;
        let sram_bytes = match acc.dataflow() {
            Dataflow::WeightStationary => {
                // Weights parked once; inputs re-read per kernel position;
                // partial sums spill when the reduction exceeds the tile.
                let psum_spills = (s.reduction_depth as f64 / p.psum_tile_depth as f64).ceil();
                s.weight_bytes as f64
                    + s.input_bytes as f64 * kernel_area
                    + s.output_bytes as f64 * psum_spills
            }
            Dataflow::OutputStationary => {
                // Outputs accumulate in place; weights re-read once per
                // output tile; inputs shared between neighbouring PEs.
                let output_tiles = (s.out_elems as f64 / f64::from(acc.pe_count())).ceil();
                s.weight_bytes as f64 * output_tiles
                    + s.input_bytes as f64 * (kernel_area / 2.0).max(1.0)
                    + s.output_bytes as f64
            }
        };

        let width = f64::from(layer.bytes_per_elem());
        let energy_pj = s.macs as f64 * p.mac_energy_pj * width * width
            + s.vector_ops as f64 * p.vector_op_energy_pj
            + sram_bytes * p.sram_energy_pj_per_byte
            + dram_bytes * p.dram_energy_pj_per_byte;

        LayerCost {
            latency_ns: compute_ns.max(dram_ns) + p.layer_launch_ns,
            energy_pj,
            compute_ns,
            dram_ns,
            sram_bytes,
            dram_bytes,
            utilization,
        }
    }

    /// Estimates the cost of running `layer` fissioned across a gang of
    /// sub-accelerators (Planaria-style): resources fuse, but the layer pays
    /// a synchronisation overhead per extra member.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn gang_cost(&self, layer: &Layer, members: &[&AcceleratorConfig]) -> LayerCost {
        let merged = AcceleratorConfig::merged(members);
        let mut cost = self.layer_cost(layer, &merged);
        let penalty = 1.0 + self.params.gang_overhead * (members.len() as f64 - 1.0);
        cost.latency_ns *= penalty;
        cost.compute_ns *= penalty;
        // Synchronisation also burns energy (extra SRAM handshakes),
        // proportionally to the overhead.
        cost.energy_pj *= penalty;
        cost
    }

    /// The cost of a context switch that must flush `outgoing_bytes` of the
    /// departing task's activations and fetch `incoming_bytes` for the
    /// arriving task, both through this accelerator's DRAM port.
    pub fn switch_cost(
        &self,
        incoming_bytes: u64,
        outgoing_bytes: u64,
        acc: &AcceleratorConfig,
    ) -> SwitchCost {
        let bytes = (incoming_bytes + outgoing_bytes) as f64;
        SwitchCost {
            latency_ns: bytes / acc.dram_gbps(),
            energy_pj: bytes * self.params.dram_energy_pj_per_byte,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_models::{Layer, LayerKind};

    fn ws(pe: u32) -> AcceleratorConfig {
        AcceleratorConfig::new("ws", pe, Dataflow::WeightStationary, 0.7, 45.0, 4 << 20).unwrap()
    }

    fn os(pe: u32) -> AcceleratorConfig {
        AcceleratorConfig::new("os", pe, Dataflow::OutputStationary, 0.7, 45.0, 4 << 20).unwrap()
    }

    fn conv(in_hw: u32, in_c: u32, out_c: u32, k: u32, groups: u32) -> Layer {
        Layer::new(
            "l",
            LayerKind::Conv2d {
                in_h: in_hw,
                in_w: in_hw,
                in_c,
                out_c,
                kernel: k,
                stride: 1,
                groups,
            },
        )
        .unwrap()
    }

    #[test]
    fn fractional_utilization_properties() {
        assert_eq!(CostModel::fractional_utilization(2048, 2048), 1.0);
        assert_eq!(CostModel::fractional_utilization(1024, 2048), 0.5);
        // Just over one tile: two passes, second mostly idle.
        let u = CostModel::fractional_utilization(2049, 2048);
        assert!(u > 0.5 && u < 0.51, "{u}");
    }

    #[test]
    fn depthwise_prefers_output_stationary() {
        let model = CostModel::paper_default();
        let dw = conv(56, 96, 96, 3, 96);
        let c_ws = model.layer_cost(&dw, &ws(2048));
        let c_os = model.layer_cost(&dw, &os(2048));
        assert!(
            c_os.latency_ns < c_ws.latency_ns,
            "OS {} vs WS {}",
            c_os.latency_ns,
            c_ws.latency_ns
        );
    }

    #[test]
    fn dense_conv_compute_matches_roofline() {
        let model = CostModel::paper_default();
        let layer = conv(56, 64, 128, 3, 1);
        let cost = model.layer_cost(&layer, &ws(2048));
        let s = layer.stats();
        // ws_parallel_work = 64·9·128 = 73728 ≫ 2048, so utilisation ≈ 1
        // up to tiling quantisation.
        assert!(cost.utilization == 1.0, "{}", cost.utilization);
        let expect = s.macs as f64 / (2048.0 * model.params().mapping_efficiency * 0.7);
        assert!((cost.compute_ns - expect).abs() / expect < 1e-9);
        assert!(cost.latency_ns >= cost.compute_ns);
    }

    #[test]
    fn gemv_is_dram_bound() {
        let model = CostModel::paper_default();
        // True GEMV (batch 1 fully-connected, VGG fc6 style): weights are
        // used exactly once, so streaming them dominates.
        let layer = Layer::new(
            "g",
            LayerKind::Gemm {
                m: 1,
                n: 4096,
                k: 19_712,
            },
        )
        .unwrap();
        let cost = model.layer_cost(&layer, &ws(2048));
        assert!(
            cost.dram_ns > cost.compute_ns,
            "dram {} compute {}",
            cost.dram_ns,
            cost.compute_ns
        );
    }

    #[test]
    fn os_pays_weight_refetch_energy_on_spatially_large_layers() {
        let model = CostModel::paper_default();
        // Large spatial output with significant weights: many output tiles.
        let layer = conv(112, 64, 64, 3, 1);
        let e_ws = model.layer_cost(&layer, &ws(2048)).sram_bytes;
        let e_os = model.layer_cost(&layer, &os(2048)).sram_bytes;
        assert!(e_os > e_ws, "OS sram {e_os} vs WS {e_ws}");
    }

    #[test]
    fn more_pes_never_slow_a_layer_down() {
        let model = CostModel::paper_default();
        for layer in [
            conv(56, 64, 128, 3, 1),
            conv(28, 96, 96, 3, 96),
            Layer::new(
                "g",
                LayerKind::Gemm {
                    m: 1,
                    n: 1000,
                    k: 512,
                },
            )
            .unwrap(),
        ] {
            let small = model.layer_cost(&layer, &ws(1024)).latency_ns;
            let big = model.layer_cost(&layer, &ws(2048)).latency_ns;
            assert!(big <= small + 1e-9, "{big} > {small}");
        }
    }

    #[test]
    fn fp16_layers_cost_more_mac_energy() {
        let model = CostModel::paper_default();
        let l8 = Layer::new(
            "a",
            LayerKind::Gemm {
                m: 8,
                n: 256,
                k: 256,
            },
        )
        .unwrap();
        let l16 = Layer::with_bytes(
            "b",
            LayerKind::Gemm {
                m: 8,
                n: 256,
                k: 256,
            },
            2,
        )
        .unwrap();
        let a = model.layer_cost(&l8, &ws(1024));
        let b = model.layer_cost(&l16, &ws(1024));
        assert!(b.energy_pj > a.energy_pj);
    }

    #[test]
    fn gang_cost_speeds_up_but_pays_overhead() {
        let model = CostModel::paper_default();
        let layer = conv(56, 256, 256, 3, 1);
        let one = ws(1024);
        let two = [&one, &one];
        let single = model.layer_cost(&layer, &one);
        let gang = model.gang_cost(&layer, &two);
        assert!(gang.latency_ns < single.latency_ns, "gang should be faster");
        // But not a perfect 2× because of the fission overhead.
        assert!(gang.latency_ns > single.latency_ns / 2.0);
    }

    #[test]
    fn switch_cost_scales_with_bytes() {
        let model = CostModel::paper_default();
        let acc = ws(2048);
        let small = model.switch_cost(1_000, 1_000, &acc);
        let big = model.switch_cost(1_000_000, 1_000_000, &acc);
        assert!(big.latency_ns > small.latency_ns);
        assert!(big.energy_pj > small.energy_pj);
        let zero = model.switch_cost(0, 0, &acc);
        assert_eq!(zero.latency_ns, 0.0);
        assert_eq!(zero.energy_pj, 0.0);
    }

    #[test]
    fn cost_model_rejects_bad_params() {
        let mut p = CostParams::paper_defaults();
        p.mapping_efficiency = -1.0;
        assert!(CostModel::new(p).is_err());
    }
}
