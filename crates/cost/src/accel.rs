use crate::CostError;

/// Index of a sub-accelerator within a [`crate::Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AcceleratorId(pub usize);

impl std::fmt::Display for AcceleratorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "acc{}", self.0)
    }
}

/// The spatial dataflow an accelerator's PE array implements.
///
/// The two styles mirror the paper's Table 2: weight-stationary (WS,
/// NVDLA-inspired) pins filter weights in the array and streams activations;
/// output-stationary (OS, ShiDianNao-inspired) pins output accumulations and
/// streams weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weight-stationary: spatial parallelism over the weight footprint
    /// (`in_c/g · k² · out_c`). Excellent for filter-heavy convolutions,
    /// poor for depthwise layers whose weight footprint is tiny.
    WeightStationary,
    /// Output-stationary: spatial parallelism over output elements.
    /// Excellent for activation-heavy layers, pays weight re-fetch energy
    /// on layers with many output tiles.
    OutputStationary,
}

impl Dataflow {
    /// Short form used in platform names ("WS" / "OS").
    pub fn short_name(self) -> &'static str {
        match self {
            Dataflow::WeightStationary => "WS",
            Dataflow::OutputStationary => "OS",
        }
    }
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One sub-accelerator: a PE array with a dataflow, a clock, and its static
/// share of the package's SRAM and off-chip bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    name: String,
    pe_count: u32,
    dataflow: Dataflow,
    clock_ghz: f64,
    dram_gbps: f64,
    sram_bytes: u64,
}

impl AcceleratorConfig {
    /// Creates an accelerator description.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidAccelerator`] if `pe_count` is zero or
    /// any rate is non-finite / non-positive.
    pub fn new(
        name: impl Into<String>,
        pe_count: u32,
        dataflow: Dataflow,
        clock_ghz: f64,
        dram_gbps: f64,
        sram_bytes: u64,
    ) -> Result<Self, CostError> {
        let name = name.into();
        if pe_count == 0 {
            return Err(CostError::InvalidAccelerator {
                reason: format!("`{name}`: pe_count must be positive"),
            });
        }
        for (label, v) in [("clock_ghz", clock_ghz), ("dram_gbps", dram_gbps)] {
            if !v.is_finite() || v <= 0.0 {
                return Err(CostError::InvalidAccelerator {
                    reason: format!("`{name}`: {label} must be finite and positive, got {v}"),
                });
            }
        }
        if sram_bytes == 0 {
            return Err(CostError::InvalidAccelerator {
                reason: format!("`{name}`: sram_bytes must be positive"),
            });
        }
        Ok(AcceleratorConfig {
            name,
            pe_count,
            dataflow,
            clock_ghz,
            dram_gbps,
            sram_bytes,
        })
    }

    /// The accelerator's display name, e.g. `"WS-2048"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of processing elements (MAC units).
    pub fn pe_count(&self) -> u32 {
        self.pe_count
    }

    /// The array's dataflow.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// Clock frequency in GHz.
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// This accelerator's share of off-chip bandwidth, in GB/s
    /// (= bytes per nanosecond).
    pub fn dram_gbps(&self) -> f64 {
        self.dram_gbps
    }

    /// This accelerator's share of on-chip SRAM, in bytes.
    pub fn sram_bytes(&self) -> u64 {
        self.sram_bytes
    }

    /// Peak MAC throughput in MACs per nanosecond.
    pub fn peak_macs_per_ns(&self) -> f64 {
        f64::from(self.pe_count) * self.clock_ghz
    }

    /// Fuses several sub-accelerators into one logical gang (Planaria-style
    /// spatial fission in reverse): PEs, bandwidth, and SRAM add up; the
    /// dataflow of the largest member wins; the clock must match.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty (callers gang at least one accelerator).
    pub fn merged(members: &[&AcceleratorConfig]) -> AcceleratorConfig {
        assert!(!members.is_empty(), "cannot merge zero accelerators");
        let largest = members
            .iter()
            .max_by_key(|a| a.pe_count)
            .expect("non-empty members");
        AcceleratorConfig {
            name: format!("gang-of-{}", members.len()),
            pe_count: members.iter().map(|a| a.pe_count).sum(),
            dataflow: largest.dataflow,
            clock_ghz: largest.clock_ghz,
            dram_gbps: members.iter().map(|a| a.dram_gbps).sum(),
            sram_bytes: members.iter().map(|a| a.sram_bytes).sum(),
        }
    }
}

impl std::fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} {} PEs @ {:.2} GHz)",
            self.name, self.dataflow, self.pe_count, self.clock_ghz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(pe: u32, df: Dataflow) -> AcceleratorConfig {
        AcceleratorConfig::new("t", pe, df, 0.7, 45.0, 4 << 20).unwrap()
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(AcceleratorConfig::new("x", 0, Dataflow::WeightStationary, 0.7, 45.0, 1).is_err());
        assert!(AcceleratorConfig::new("x", 8, Dataflow::WeightStationary, 0.0, 45.0, 1).is_err());
        assert!(AcceleratorConfig::new("x", 8, Dataflow::WeightStationary, 0.7, -1.0, 1).is_err());
        assert!(AcceleratorConfig::new("x", 8, Dataflow::WeightStationary, 0.7, 45.0, 0).is_err());
    }

    #[test]
    fn peak_throughput() {
        let a = acc(2048, Dataflow::WeightStationary);
        assert!((a.peak_macs_per_ns() - 2048.0 * 0.7).abs() < 1e-9);
    }

    #[test]
    fn merged_sums_resources_and_takes_largest_dataflow() {
        let big = acc(2048, Dataflow::WeightStationary);
        let small = acc(1024, Dataflow::OutputStationary);
        let gang = AcceleratorConfig::merged(&[&small, &big]);
        assert_eq!(gang.pe_count(), 3072);
        assert_eq!(gang.dataflow(), Dataflow::WeightStationary);
        assert!((gang.dram_gbps() - 90.0).abs() < 1e-9);
        assert_eq!(gang.sram_bytes(), 8 << 20);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dataflow::WeightStationary.to_string(), "WS");
        assert_eq!(AcceleratorId(3).to_string(), "acc3");
        assert!(acc(8, Dataflow::OutputStationary)
            .to_string()
            .contains("OS"));
    }
}
