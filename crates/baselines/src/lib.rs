//! Baseline schedulers the DREAM paper compares against.
//!
//! * [`FcfsScheduler`] — dynamic first-come-first-served at *model*
//!   granularity: the oldest request claims the first free accelerator and
//!   keeps it until the whole model finishes (§5.1 baseline (1)).
//! * [`StaticScheduler`] — an offline table-driven scheduler built from
//!   worst-case assumptions (every cascade fires, no layer is skipped);
//!   layer→accelerator placements are fixed and never adapted at runtime.
//!   This is the "static" half of the paper's Figure 2 motivation study.
//! * [`VeltairScheduler`] — Veltair-style (ASPLOS'22) threshold-based
//!   *layer-block* scheduling: consecutive layers are grouped into blocks
//!   to reduce scheduling conflicts, blocks start in EDF order, and the
//!   block size adapts to the current contention level.
//! * [`PlanariaScheduler`] — Planaria-style (MICRO'20) deadline-aware
//!   spatial fission: compute resources (here: sub-accelerator gangs) are
//!   allocated per task according to its deadline pressure.
//! * [`EdfScheduler`] — plain earliest-deadline-first at layer granularity
//!   onto the fastest idle accelerator; an extra reference point not in the
//!   paper, useful for sanity checks.
//!
//! As in the paper (§5.1), Veltair and Planaria are re-implementations of
//! the respective *scheduling policies* on our simulator — Veltair's
//! compiler half and Planaria's RTL are out of scope, and neither baseline
//! optimises energy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod edf;
mod fcfs;
mod planaria;
mod statik;
mod veltair;

pub use edf::EdfScheduler;
pub use fcfs::FcfsScheduler;
pub use planaria::PlanariaScheduler;
pub use statik::StaticScheduler;
pub use veltair::VeltairScheduler;

/// All baseline schedulers by name, for experiment harnesses.
///
/// The returned factory builds a fresh scheduler per run (schedulers carry
/// state and must not be shared across simulations).
pub fn baseline_names() -> &'static [&'static str] {
    &["FCFS", "Static", "EDF", "Veltair", "Planaria"]
}

#[cfg(test)]
mod tests {
    #[test]
    fn baseline_names_listed() {
        assert_eq!(super::baseline_names().len(), 5);
    }
}
