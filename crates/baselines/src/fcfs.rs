use std::collections::BTreeMap;

use dream_cost::AcceleratorId;
use dream_sim::{
    Assignment, Decision, Scheduler, SchedulerCapabilities, SystemView, TaskEvent, TaskEventKind,
    TaskId,
};

/// Dynamic first-come-first-served at model granularity (§5.1 baseline 1,
/// after Nexus/Clockwork): the oldest ready request is dispatched to the
/// first available accelerator and *stays* there — every subsequent layer
/// of that inference runs on the same accelerator until the model
/// completes.
///
/// This is the "dynamic FCFS" of Figure 2: it adapts to what actually
/// arrives (unlike [`crate::StaticScheduler`]) but is blind to deadlines,
/// heterogeneity, and energy.
#[derive(Debug, Default)]
pub struct FcfsScheduler {
    /// Accelerator → the task pinned to it for the duration of its model.
    pins: BTreeMap<AcceleratorId, TaskId>,
}

impl FcfsScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FcfsScheduler {
    fn name(&self) -> &str {
        "FCFS"
    }

    fn capabilities(&self) -> SchedulerCapabilities {
        SchedulerCapabilities {
            cascade: true,
            concurrent: true,
            realtime: false,
            task_dynamicity: false,
            model_dynamicity: false,
            energy_aware: false,
            heterogeneity_aware: false,
        }
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut decision = Decision::none();
        // Oldest-first queue of ready tasks not already pinned somewhere.
        let pinned_tasks: Vec<TaskId> = self.pins.values().copied().collect();
        let mut queue: Vec<_> = view
            .ready_tasks()
            .filter(|t| !pinned_tasks.contains(&t.id()))
            .collect();
        queue.sort_by_key(|t| (t.released(), t.id()));
        let mut queue = queue.into_iter();

        for acc in view.idle_accs() {
            match self.pins.get(&acc.id()) {
                // The accelerator is working through a model: continue it.
                Some(&task_id) => {
                    if let Some(task) = view.task(task_id) {
                        if task.is_ready() {
                            decision
                                .assignments
                                .push(Assignment::single(task_id, acc.id()));
                        }
                        // Running elsewhere cannot happen: this acc owns it.
                    } else {
                        // The pinned task finished or vanished; free the
                        // slot and serve the queue.
                        self.pins.remove(&acc.id());
                        if let Some(task) = queue.next() {
                            self.pins.insert(acc.id(), task.id());
                            decision
                                .assignments
                                .push(Assignment::single(task.id(), acc.id()));
                        }
                    }
                }
                None => {
                    if let Some(task) = queue.next() {
                        self.pins.insert(acc.id(), task.id());
                        decision
                            .assignments
                            .push(Assignment::single(task.id(), acc.id()));
                    }
                }
            }
        }
        decision
    }

    fn on_task_event(&mut self, event: &TaskEvent) {
        match event.kind {
            TaskEventKind::Completed { .. } | TaskEventKind::Dropped | TaskEventKind::Flushed => {
                self.pins.retain(|_, &mut t| t != event.task);
            }
            TaskEventKind::Released => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{Platform, PlatformPreset};
    use dream_models::{CascadeProbability, Scenario, ScenarioKind};
    use dream_sim::{Millis, SimulationBuilder};

    #[test]
    fn fcfs_runs_all_scenarios_without_invalid_decisions() {
        for kind in ScenarioKind::all() {
            let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
            let scenario = Scenario::new(kind, CascadeProbability::default_paper());
            let mut s = FcfsScheduler::new();
            let m = SimulationBuilder::new(platform, scenario)
                .duration(Millis::new(400))
                .seed(3)
                .run(&mut s)
                .unwrap()
                .into_metrics();
            assert_eq!(m.invalid_decisions, 0, "{kind}");
            assert!(m.layer_executions > 0, "{kind}");
        }
    }

    #[test]
    fn fcfs_keeps_models_on_one_accelerator() {
        // With model-granularity pinning, context switches only happen
        // between models, never within one: the switch count must be well
        // below the layer count.
        let platform = Platform::preset(PlatformPreset::Homo4kWs2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut s = FcfsScheduler::new();
        let m = SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(500))
            .seed(3)
            .run(&mut s)
            .unwrap()
            .into_metrics();
        assert!(
            m.context_switches < m.layer_executions / 5,
            "switches {} vs layers {}",
            m.context_switches,
            m.layer_executions
        );
    }
}
