use dream_cost::{AcceleratorConfig, AcceleratorId};
use dream_sim::{
    canonical_sum, Assignment, Decision, Scheduler, SchedulerCapabilities, SystemView, Task,
};

/// Planaria-style scheduler (Ghodrati et al., MICRO'20): deadline-aware
/// dynamic **spatial fission** of compute resources.
///
/// Planaria splits a large systolic array into subarrays and allocates each
/// DNN just enough compute to meet its deadline. On our multi-accelerator
/// substrate the "subarray pool" is the set of idle sub-accelerators:
///
/// * tasks are served in EDF order;
/// * each task is granted the *smallest gang* of idle accelerators (largest
///   first) whose estimated remaining completion time meets the deadline —
///   resource-hungry tasks close to their deadline get more spatial
///   resources, relaxed tasks get one accelerator;
/// * gang execution pays the fission/synchronisation overhead through the
///   cost model's gang costing, exactly like Planaria's recomposition
///   overhead.
///
/// Deadline- and heterogeneity-aware, but energy-blind (Table 5).
#[derive(Debug, Default)]
pub struct PlanariaScheduler(());

impl PlanariaScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimated remaining completion time of `task` if every remaining
    /// layer ran on the gang `ids` (whose configs are `configs`, aligned).
    ///
    /// Planaria predates RTMM dynamicity, so the estimate is *worst case*:
    /// every remaining layer executes (no skip/exit knowledge) — exactly
    /// the conservatism §2.2 attributes to schedulers that cannot reason
    /// about constrained dynamicity.
    ///
    /// Single-accelerator gangs read the offline latency table the
    /// workload precomputed (bit-identical to an on-demand
    /// `CostBackend::layer_cost`, which is how the table was built); only
    /// true multi-member gangs query the backend's gang costing. A
    /// backend that cannot cost the gang (e.g. a table import without a
    /// matching gang row) yields an infinite estimate, so the gang never
    /// "meets the deadline" and Planaria deterministically falls back to
    /// its minimum single-accelerator allocation.
    fn remaining_on_gang(
        view: &SystemView<'_>,
        task: &Task,
        ids: &[AcceleratorId],
        configs: &[&AcceleratorConfig],
    ) -> f64 {
        if let [only] = ids {
            return canonical_sum(
                task.remaining()
                    .map(|q| view.workload().latency_ns(q.layer, *only)),
            );
        }
        canonical_sum(task.remaining().map(|q| {
            view.cost()
                .gang_cost(view.workload().layer(q.layer), configs)
                .map_or(f64::INFINITY, |c| c.latency_ns)
        }))
    }
}

impl Scheduler for PlanariaScheduler {
    fn name(&self) -> &str {
        "Planaria"
    }

    fn capabilities(&self) -> SchedulerCapabilities {
        SchedulerCapabilities {
            cascade: true,
            concurrent: true,
            realtime: true,
            task_dynamicity: false,
            model_dynamicity: false,
            energy_aware: false,
            heterogeneity_aware: true,
        }
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut decision = Decision::none();
        // Idle pool, largest accelerators first (fission grows by adding
        // the next-largest free subarray).
        let mut pool: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
        pool.sort_by_key(|id| {
            std::cmp::Reverse(
                view.platform()
                    .accelerator(*id)
                    .map(|a| a.pe_count())
                    .unwrap_or(0),
            )
        });
        let mut ready: Vec<_> = view.ready_tasks().collect();
        ready.sort_by_key(|t| (t.deadline(), t.id()));

        let mut pool_configs: Vec<&AcceleratorConfig> = pool
            .iter()
            .map(|id| view.platform().accelerator(*id).expect("pool ids valid"))
            .collect();
        for task in ready {
            if pool.is_empty() {
                break;
            }
            let slack = task.slack_ns(view.now());
            // Grow the gang until the estimated completion meets the
            // deadline (or the pool is exhausted).
            let mut chosen = 1;
            for size in 1..=pool.len() {
                chosen = size;
                if Self::remaining_on_gang(view, task, &pool[..size], &pool_configs[..size])
                    <= slack
                {
                    break;
                }
            }
            // A task that cannot meet its deadline anyway gets the minimum
            // allocation (Planaria does not waste subarrays on lost
            // causes).
            if Self::remaining_on_gang(view, task, &pool[..chosen], &pool_configs[..chosen]) > slack
            {
                chosen = 1;
            }
            let accs: Vec<_> = pool.drain(..chosen).collect();
            pool_configs.drain(..chosen);
            decision.assignments.push(Assignment {
                task: task.id(),
                accs,
            });
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{Platform, PlatformPreset};
    use dream_models::{CascadeProbability, Scenario, ScenarioKind};
    use dream_sim::{Millis, SimulationBuilder};

    fn run(kind: ScenarioKind, preset: PlatformPreset, ms: u64) -> dream_sim::Metrics {
        let platform = Platform::preset(preset);
        let scenario = Scenario::new(kind, CascadeProbability::default_paper());
        let mut s = PlanariaScheduler::new();
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(ms))
            .seed(5)
            .run(&mut s)
            .unwrap()
            .into_metrics()
    }

    #[test]
    fn planaria_runs_all_scenarios() {
        for kind in ScenarioKind::all() {
            let m = run(kind, PlatformPreset::Hetero4kWs1Os2, 400);
            assert_eq!(m.invalid_decisions, 0, "{kind}");
            assert!(m.layer_executions > 0, "{kind}");
        }
    }

    #[test]
    fn planaria_outperforms_fcfs_on_deadlines_under_load() {
        let m_planaria = run(
            ScenarioKind::DroneIndoor,
            PlatformPreset::Hetero4kWs1Os2,
            1000,
        );
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(
            ScenarioKind::DroneIndoor,
            CascadeProbability::default_paper(),
        );
        let mut fcfs = crate::FcfsScheduler::new();
        let m_fcfs = SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(1000))
            .seed(5)
            .run(&mut fcfs)
            .unwrap()
            .into_metrics();
        assert!(
            m_planaria.overall_raw_violation_rate() <= m_fcfs.overall_raw_violation_rate(),
            "planaria {} vs fcfs {}",
            m_planaria.overall_raw_violation_rate(),
            m_fcfs.overall_raw_violation_rate()
        );
    }
}
