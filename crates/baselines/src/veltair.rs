use std::collections::BTreeMap;

use dream_cost::AcceleratorId;
use dream_sim::{
    Assignment, Decision, Scheduler, SchedulerCapabilities, SystemView, TaskEvent, TaskEventKind,
    TaskId,
};

/// Veltair-style scheduler (Liu et al., ASPLOS'22): adaptive threshold-based
/// **layer-block** scheduling.
///
/// Veltair observed that per-layer scheduling causes resource-allocation
/// conflicts while per-model scheduling wastes flexibility, and grouped
/// consecutive layers into blocks whose size adapts to the contention
/// level. We reproduce the scheduling policy on sub-accelerators:
///
/// * a task picks up a *block* of consecutive layers whose summed mean
///   latency reaches the adaptive threshold
///   `base_threshold · (1 + active_tasks / 4)` — more contention, larger
///   blocks, fewer conflicts;
/// * a block executes entirely on one accelerator; block starts are
///   deadline-ordered (Veltair serves latency-critical tenants first);
/// * accelerators are treated as interchangeable (the original targets a
///   homogeneous CPU cluster), so blocks go to the first idle accelerator
///   in round-robin order and energy is never considered.
#[derive(Debug)]
pub struct VeltairScheduler {
    base_threshold_ns: f64,
    /// Task → (accelerator owning its current block, layers left in block).
    blocks: BTreeMap<TaskId, (AcceleratorId, usize)>,
    rr_cursor: usize,
}

impl VeltairScheduler {
    /// Creates the scheduler with the default 400 µs base block threshold.
    pub fn new() -> Self {
        Self::with_threshold_us(400)
    }

    /// Creates the scheduler with an explicit base block threshold.
    pub fn with_threshold_us(us: u64) -> Self {
        VeltairScheduler {
            base_threshold_ns: us as f64 * 1_000.0,
            blocks: BTreeMap::new(),
            rr_cursor: 0,
        }
    }

    /// How many upcoming layers of `task` form the next block under the
    /// current adaptive threshold.
    // detlint: canonical-fold -- early-exit prefix scan in queue order; not a whole-collection sum, so canonical_sum cannot express it
    fn block_len(&self, view: &SystemView<'_>, task: &dream_sim::Task) -> usize {
        let threshold = self.base_threshold_ns * (1.0 + view.task_count() as f64 / 4.0);
        let mut acc = 0.0;
        let mut n = 0;
        for q in task.remaining() {
            acc += view.workload().avg_latency_ns(q.layer);
            n += 1;
            if acc >= threshold {
                break;
            }
        }
        n.max(1)
    }
}

impl Default for VeltairScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for VeltairScheduler {
    fn name(&self) -> &str {
        "Veltair"
    }

    fn capabilities(&self) -> SchedulerCapabilities {
        SchedulerCapabilities {
            cascade: true,
            concurrent: true,
            realtime: true,
            task_dynamicity: false,
            model_dynamicity: false,
            energy_aware: false,
            heterogeneity_aware: false,
        }
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut decision = Decision::none();
        let mut idle: Vec<AcceleratorId> = view.idle_accs().map(|a| a.id()).collect();

        // 1. Continue blocks in flight whose accelerator is free again.
        let mut continued: Vec<TaskId> = Vec::new();
        for (&task_id, &(acc, left)) in &self.blocks {
            if left == 0 {
                continue;
            }
            let Some(task) = view.task(task_id) else {
                continue;
            };
            if task.is_ready() && idle.contains(&acc) {
                decision.assignments.push(Assignment::single(task_id, acc));
                idle.retain(|&a| a != acc);
                continued.push(task_id);
            }
        }
        for t in &continued {
            if let Some(e) = self.blocks.get_mut(t) {
                e.1 -= 1;
            }
        }
        self.blocks.retain(|_, &mut (_, left)| left > 0);

        // 2. Start new blocks in EDF order on the remaining idle
        //    accelerators (round-robin).
        let mut ready: Vec<_> = view
            .ready_tasks()
            .filter(|t| !self.blocks.contains_key(&t.id()))
            .filter(|t| !continued.contains(&t.id()))
            .collect();
        ready.sort_by_key(|t| (t.deadline(), t.id()));
        for task in ready {
            if idle.is_empty() {
                break;
            }
            let acc = idle.remove(self.rr_cursor % idle.len());
            self.rr_cursor = self.rr_cursor.wrapping_add(1);
            let len = self.block_len(view, task);
            decision
                .assignments
                .push(Assignment::single(task.id(), acc));
            if len > 1 {
                self.blocks.insert(task.id(), (acc, len - 1));
            }
        }
        decision
    }

    fn on_task_event(&mut self, event: &TaskEvent) {
        match event.kind {
            TaskEventKind::Completed { .. } | TaskEventKind::Dropped | TaskEventKind::Flushed => {
                self.blocks.remove(&event.task);
            }
            TaskEventKind::Released => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{Platform, PlatformPreset};
    use dream_models::{CascadeProbability, Scenario, ScenarioKind};
    use dream_sim::{Millis, SimulationBuilder};

    fn run(kind: ScenarioKind, ms: u64) -> dream_sim::Metrics {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(kind, CascadeProbability::default_paper());
        let mut s = VeltairScheduler::new();
        SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(ms))
            .seed(5)
            .run(&mut s)
            .unwrap()
            .into_metrics()
    }

    #[test]
    fn veltair_runs_all_scenarios() {
        for kind in ScenarioKind::all() {
            let m = run(kind, 400);
            assert_eq!(m.invalid_decisions, 0, "{kind}");
            assert!(m.layer_executions > 0, "{kind}");
        }
    }

    #[test]
    fn larger_blocks_reduce_context_switches() {
        let run_with = |us: u64| {
            let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
            let scenario =
                Scenario::new(ScenarioKind::ArSocial, CascadeProbability::default_paper());
            let mut s = VeltairScheduler::with_threshold_us(us);
            SimulationBuilder::new(platform, scenario)
                .duration(Millis::new(800))
                .seed(5)
                .run(&mut s)
                .unwrap()
                .into_metrics()
        };
        let tiny = run_with(1); // degenerates to per-layer scheduling
        let blocked = run_with(400);
        assert!(
            blocked.context_switches < tiny.context_switches,
            "blocked {} vs per-layer {}",
            blocked.context_switches,
            tiny.context_switches
        );
    }

    #[test]
    fn block_threshold_is_configurable() {
        let a = VeltairScheduler::with_threshold_us(100);
        let b = VeltairScheduler::with_threshold_us(1_000);
        assert!(a.base_threshold_ns < b.base_threshold_ns);
    }
}
