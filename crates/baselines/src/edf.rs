use dream_sim::{Assignment, Decision, Scheduler, SchedulerCapabilities, SystemView};

/// Plain earliest-deadline-first at layer granularity: ready tasks in
/// deadline order each take the idle accelerator with the lowest estimated
/// latency for their next layer.
///
/// Not one of the paper's baselines — included as a transparent reference
/// point (deadline-aware and heterogeneity-aware, but with no starvation
/// protection, no energy awareness, and no drop/supernet machinery).
#[derive(Debug, Default)]
pub struct EdfScheduler(());

impl EdfScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for EdfScheduler {
    fn name(&self) -> &str {
        "EDF"
    }

    fn capabilities(&self) -> SchedulerCapabilities {
        SchedulerCapabilities {
            cascade: true,
            concurrent: true,
            realtime: true,
            task_dynamicity: false,
            model_dynamicity: false,
            energy_aware: false,
            heterogeneity_aware: true,
        }
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        let mut decision = Decision::none();
        let mut ready: Vec<_> = view.ready_tasks().collect();
        ready.sort_by_key(|t| (t.deadline(), t.id()));
        let mut idle: Vec<_> = view.idle_accs().map(|a| a.id()).collect();
        for task in ready {
            if idle.is_empty() {
                break;
            }
            let Some(next) = task.next_layer() else {
                continue;
            };
            let (pos, _) = idle
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    view.workload()
                        .latency_ns(next.layer, **a)
                        .partial_cmp(&view.workload().latency_ns(next.layer, **b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("idle is non-empty");
            let acc = idle.remove(pos);
            decision
                .assignments
                .push(Assignment::single(task.id(), acc));
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{Platform, PlatformPreset};
    use dream_models::{CascadeProbability, Scenario, ScenarioKind};
    use dream_sim::{Millis, SimulationBuilder};

    #[test]
    fn edf_runs_cleanly() {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(
            ScenarioKind::DroneOutdoor,
            CascadeProbability::default_paper(),
        );
        let mut s = EdfScheduler::new();
        let m = SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(500))
            .run(&mut s)
            .unwrap()
            .into_metrics();
        assert_eq!(m.invalid_decisions, 0);
        assert!(m.layer_executions > 500);
    }
}
