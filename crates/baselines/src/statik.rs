use std::collections::BTreeMap;

use dream_cost::AcceleratorId;
use dream_models::VariantId;
use dream_sim::{Assignment, Decision, ModelKey, Scheduler, SchedulerCapabilities, SystemView};

/// An offline, table-driven static scheduler — the "static" half of the
/// paper's Figure 2 motivation experiment.
///
/// At each workload phase it builds a **fixed layer→accelerator placement**
/// from *worst-case* assumptions (every cascade fires, no layer is skipped,
/// the heaviest supernet variant runs): layers are placed greedily onto the
/// accelerator with the least accumulated worst-case load-per-second. At
/// runtime the table is followed blindly:
///
/// * a layer may only run on its pre-assigned accelerator — no work
///   stealing when the realized workload leaves that accelerator idle;
/// * queueing per accelerator is FIFO by release time — no deadline
///   awareness.
///
/// Both restrictions are exactly what makes static scheduling fragile under
/// RTMM dynamicity (§2.3): capacity reserved for models that do not launch
/// (a negative keyword-spotting result, a skipped SkipNet block) cannot be
/// reused, while bursts on other accelerators overflow.
#[derive(Debug, Default)]
pub struct StaticScheduler {
    /// `(model, graph layer index) → accelerator`, rebuilt per phase.
    placement: BTreeMap<(ModelKey, usize), AcceleratorId>,
    built_for_phase: Option<usize>,
}

impl StaticScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn build_table(&mut self, view: &SystemView<'_>) {
        self.placement.clear();
        let mut load_per_acc: Vec<f64> = vec![0.0; view.accs().len()];
        for node in view.workload().nodes() {
            if node.key().phase != view.phase() {
                continue;
            }
            let fps = node.rate().as_fps();
            // Worst case: default (heaviest) variant, every layer executes,
            // cascade probability treated as 1.
            for (graph_idx, &layer) in node.variant_layers(VariantId(0)).iter().enumerate() {
                let (best_acc, _) = load_per_acc
                    .iter()
                    .enumerate()
                    .map(|(i, &load)| {
                        let lat = view.workload().latency_ns(layer, AcceleratorId(i));
                        (i, load + lat * fps)
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("platforms have at least one accelerator");
                let lat = view.workload().latency_ns(layer, AcceleratorId(best_acc));
                load_per_acc[best_acc] += lat * fps;
                self.placement
                    .insert((node.key(), graph_idx), AcceleratorId(best_acc));
            }
        }
        self.built_for_phase = Some(view.phase());
    }
}

impl Scheduler for StaticScheduler {
    fn name(&self) -> &str {
        "Static"
    }

    fn capabilities(&self) -> SchedulerCapabilities {
        SchedulerCapabilities {
            cascade: true,
            concurrent: true,
            realtime: false,
            task_dynamicity: false,
            model_dynamicity: false,
            energy_aware: false,
            heterogeneity_aware: true,
        }
    }

    fn schedule(&mut self, view: &SystemView<'_>) -> Decision {
        if self.built_for_phase != Some(view.phase()) {
            self.build_table(view);
        }
        let mut decision = Decision::none();
        for acc in view.idle_accs() {
            // FIFO over the tasks whose next layer is statically placed
            // here.
            let candidate = view
                .ready_tasks()
                .filter(|t| {
                    t.next_layer()
                        .and_then(|l| self.placement.get(&(t.key(), l.graph_idx)))
                        == Some(&acc.id())
                })
                .min_by_key(|t| (t.released(), t.id()));
            if let Some(task) = candidate {
                decision
                    .assignments
                    .push(Assignment::single(task.id(), acc.id()));
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dream_cost::{Platform, PlatformPreset};
    use dream_models::{CascadeProbability, Scenario, ScenarioKind};
    use dream_sim::{Millis, SimulationBuilder};

    #[test]
    fn static_runs_and_completes_frames() {
        let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
        let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
        let mut s = StaticScheduler::new();
        let m = SimulationBuilder::new(platform, scenario)
            .duration(Millis::new(500))
            .seed(7)
            .run(&mut s)
            .unwrap()
            .into_metrics();
        assert_eq!(m.invalid_decisions, 0);
        let completed: u64 = m.models().map(|(_, s)| s.completed_on_time).sum();
        assert!(completed > 0);
    }

    #[test]
    fn static_violates_more_than_dynamic_fcfs_on_ar_call() {
        // The Figure 2 claim, in miniature: same workload realization, the
        // static scheduler misses more deadlines than dynamic FCFS.
        let run = |s: &mut dyn Scheduler| {
            let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
            let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
            SimulationBuilder::new(platform, scenario)
                .duration(Millis::new(2000))
                .seed(11)
                .run(s)
                .unwrap()
                .into_metrics()
        };
        let m_static = run(&mut StaticScheduler::new());
        let m_fcfs = run(&mut crate::FcfsScheduler::new());
        assert!(
            m_static.overall_raw_violation_rate() >= m_fcfs.overall_raw_violation_rate(),
            "static {} < fcfs {}",
            m_static.overall_raw_violation_rate(),
            m_fcfs.overall_raw_violation_rate()
        );
    }
}
