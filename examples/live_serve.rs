//! Live serving end to end: spawn the serving runtime, feed it ~1k
//! requests through the in-process channel client *and* a real TCP
//! socket speaking the wire protocol, hot-swap the scenario mid-session,
//! drain gracefully — then prove the recorded session replays through
//! the batch simulator **bit-identically**.
//!
//! ```text
//! cargo run --release --example live_serve
//! ```
//!
//! The recorded arrival trace is saved under `artifacts/sessions/`
//! (override the root with `DREAM_ARTIFACTS_DIR`).

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dream::prelude::*;
use dream_models::ScenarioKind;
use dream_serve::{listen_tcp, AdmissionPolicy, ServeConfig, ServeEngine, WallClock};

const CHANNEL_REQUESTS: usize = 800;
const SOCKET_REQUESTS: usize = 300;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::new(0.5)?);
    let mut config = ServeConfig::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario);
    config.seed = 2024;
    // 200× accelerated virtual time: a couple wall-seconds of feeding
    // covers a realistic multi-second serving window.
    config.clock = Arc::new(WallClock::accelerated(200.0));
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 8;
    config.policy = AdmissionPolicy::ShedOldest;
    let scheduler = Box::new(DreamScheduler::new(DreamConfig::full()));
    let (engine, handle) = ServeEngine::new(config, scheduler)?;
    let mut snapshots = handle.snapshots();
    let server = std::thread::spawn(move || engine.run());

    // Socket ingress.
    let (addr, socket_server) = listen_tcp(&handle, "127.0.0.1:0")?;
    println!("listening on tcp://{addr}");
    let mut socket = TcpStream::connect(addr)?;

    // Feed phase 0 (AR_Call): channel + socket.
    let client = handle.client("channel:demo");
    for i in 0..CHANNEL_REQUESTS / 2 {
        client.submit(PipelineId(i % 2), NodeId(0))?;
        if i % 2 == 0 {
            writeln!(socket, "r 0 0")?;
        }
        std::thread::sleep(Duration::from_micros(300));
    }

    // Hot-swap to VR_Gaming mid-session, then keep feeding.
    handle.swap(Scenario::new(
        ScenarioKind::VrGaming,
        CascadeProbability::new(0.5)?,
    ));
    println!("hot-swap to VR_Gaming ordered");
    for i in 0..CHANNEL_REQUESTS / 2 {
        client.submit(PipelineId(i % 4), NodeId(0))?;
        if i % 2 == 0 && i / 2 < SOCKET_REQUESTS {
            writeln!(socket, "r {} 0", i % 4)?;
        }
        std::thread::sleep(Duration::from_micros(300));
    }
    socket.flush()?;

    // Watch the runtime work, then drain.
    let snap = snapshots
        .wait_for_update(Duration::from_secs(10))
        .expect("the loop publishes snapshots");
    println!(
        "tick {:>5}  phase {}  admitted {:>5}  backlog {:>3}  ready {:>3}  running {:>2}",
        snap.tick,
        snap.phase,
        snap.admitted,
        snap.ingress_backlog,
        snap.ready_tasks,
        snap.running_layers,
    );
    handle.drain();
    let report = server.join().expect("server thread")?;
    socket_server.shutdown();

    // The smoke assertions CI relies on: traffic actually flowed through
    // both ingress paths, the swap happened, and the drain completed.
    let outcome = &report.outcome;
    assert!(report.record.trace().len() >= 900, "most requests admitted");
    assert_eq!(report.record.phases().len(), 2, "hot-swap recorded");
    assert!(outcome.metrics().layer_executions > 0, "work was scheduled");
    assert!(
        report
            .sources
            .iter()
            .any(|s| s.label.starts_with("tcp:") && s.admitted > 0),
        "socket ingress delivered"
    );
    println!("\nper-source admission funnel:");
    for s in &report.sources {
        println!(
            "  {:<24} submitted {:>5}  admitted {:>5}  clamped {:>4}  shed {:>3}  rejected {:>3}",
            s.label,
            s.submitted,
            s.admitted,
            s.clamped,
            s.shed,
            s.rejected_capacity + s.rejected_invalid + s.rejected_closed,
        );
    }

    // Save the session for offline analysis / replay.
    let dir = dream_bench::artifacts_dir("sessions");
    let trace_path = dir.join("live_serve_session.csv");
    std::fs::write(&trace_path, report.record.trace().to_csv())?;
    println!(
        "\nrecorded {} arrivals → {}",
        report.record.trace().len(),
        trace_path.display()
    );

    // Replayability: the batch simulator reproduces the live session
    // bit-for-bit.
    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let batch = report.record.replay(&mut fresh)?;
    println!(
        "live fingerprint {:016x}, batch-replay fingerprint {:016x}",
        outcome.metrics().fingerprint(),
        batch.metrics().fingerprint()
    );
    assert_eq!(
        outcome.metrics().fingerprint(),
        batch.metrics().fingerprint(),
        "the recorded live session must replay bit-identically"
    );
    println!("bit-identical ✔");
    Ok(())
}
