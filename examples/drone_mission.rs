//! Task-level dynamicity: a drone flies outdoors, enters a building
//! mid-mission (scenario switch with pipeline flush), and DREAM's
//! adaptivity engine re-tunes (α, β) online without blocking dispatch.
//!
//! ```text
//! cargo run --release --example drone_mission
//! ```

use dream::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::preset(PlatformPreset::Hetero4kOs1Ws2);

    // Enable online adaptation so the workload change triggers a live
    // tuning episode (§4.4).
    let config = DreamConfig::full().with_online_adaptation();
    let mut scheduler = DreamScheduler::new(config);

    let outcome = SimulationBuilder::new(platform, Scenario::drone_outdoor())
        .add_phase(Millis::new(1_500), Scenario::drone_indoor())
        .duration(Millis::new(3_000))
        .seed(7)
        .run(&mut scheduler)?;

    let metrics = outcome.metrics();
    println!("== per-model outcome (phase 0 = outdoor, phase 1 = indoor) ==");
    for (key, stats) in metrics.models() {
        println!(
            "phase {} {:<18} released {:>3}  on-time {:>3}  violated {:>3}  flushed {:>2}",
            key.phase,
            stats.model_name,
            stats.released,
            stats.completed_on_time,
            stats.violated(),
            stats.flushed,
        );
    }

    println!("\n== adaptivity engine ==");
    println!("tuning episodes : {}", scheduler.adaptivity().episodes());
    println!(
        "candidates tried: {}",
        scheduler.adaptivity().history().len()
    );
    for (time, params, cost) in scheduler.adaptivity().history().iter().take(8) {
        println!("  t={time:<12} candidate {params} -> windowed UXCost {cost:.4}");
    }
    println!("final parameters: {}", scheduler.current_params());

    let report = UxCostReport::from_metrics(metrics);
    println!(
        "\noverall UXCost over the whole mission: {:.4}",
        report.uxcost()
    );
    Ok(())
}
