//! The deterministic flight recorder end to end: serve a live session
//! with the tracer on (admissions, a mid-session fault window, a
//! scenario hot-swap, a graceful drain), export the trace to
//! Chrome/Perfetto JSON and CSV, then replay the recorded session
//! through the batch simulator with the tracer on again — and prove
//! the two traces are **byte-identical** in both formats.
//!
//! ```text
//! cargo run --release --example flight_recorder
//! ```
//!
//! Artifacts land under `artifacts/flight/` (override the root with
//! `DREAM_ARTIFACTS_DIR`); load the `.json` files at `ui.perfetto.dev`
//! or `chrome://tracing`.

use std::sync::Arc;
use std::time::Duration;

use dream::prelude::*;
use dream_cost::AcceleratorId;
use dream_models::ScenarioKind;
use dream_serve::{ManualClock, MetricsSnapshot, ServeConfig, ServeEngine, WatchReceiver};
use dream_sim::{FaultKind, TraceConfig};

// Harness timeout only — the wall clock never touches the virtual
// timeline (the trace-identity asserts below are the proof).
#[allow(clippy::disallowed_methods)]
fn wait_for(
    snapshots: &mut WatchReceiver<MetricsSnapshot>,
    what: &str,
    cond: impl Fn(&MetricsSnapshot) -> bool,
) -> Arc<MetricsSnapshot> {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(snap) = snapshots.latest() {
            if cond(&snap) {
                return snap;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for: {what}"
        );
        snapshots.wait_for_update(Duration::from_millis(200));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::default_paper());
    let clock = ManualClock::new();
    let mut config = ServeConfig::new(Platform::preset(PlatformPreset::Hetero4kWs1Os2), scenario);
    config.seed = 2024;
    config.clock = Arc::new(clock.clone());
    config.tick = Duration::from_millis(1);
    config.snapshot_every = 1;
    config.trace = Some(TraceConfig::default());
    let scheduler = Box::new(DreamScheduler::new(DreamConfig::full()));
    let (engine, handle) = ServeEngine::new(config, scheduler)?;
    let mut snapshots = handle.snapshots();
    let server = std::thread::spawn(move || engine.run());
    let client = handle.client("channel:flight");

    // Phase 0 (AR_Call) with a stall window opening mid-stream.
    for i in 0..40u64 {
        client.submit(PipelineId(i as usize % 2), NodeId(0))?;
        if i == 12 {
            handle.fault(
                AcceleratorId(0),
                FaultKind::Stall {
                    duration: SimTime::from_ns(10_000_000),
                },
            );
            println!("stall window ordered against accelerator 0");
        }
        clock.advance_by(SimTime::from_ns(2_500_000 + i * 11_000));
    }
    wait_for(&mut snapshots, "phase-0 traffic", |s| s.admitted >= 40);

    // Hot-swap to VR_Gaming, then keep feeding.
    handle.swap(Scenario::new(
        ScenarioKind::VrGaming,
        CascadeProbability::default_paper(),
    ));
    wait_for(&mut snapshots, "swap ordered", |s| s.phase == 1);
    for i in 0..40u64 {
        client.submit(PipelineId(0), NodeId(0))?;
        clock.advance_by(SimTime::from_ns(3_000_000 + i * 7_000));
    }
    let snap = wait_for(&mut snapshots, "phase-1 traffic", |s| s.admitted >= 80);
    println!(
        "tick {:>5}  phase {}  admitted {:>4}  p50 {:?} ms  p99 {:?} ms",
        snap.tick,
        snap.phase,
        snap.admitted,
        snap.sojourn_hist.quantile_ms(0.50),
        snap.sojourn_hist.quantile_ms(0.99),
    );

    handle.drain();
    let report = server.join().expect("server thread")?;
    let live = report.outcome.trace().expect("tracer was on");
    println!(
        "live trace: {} events ({} dropped, ring capacity {})",
        live.len(),
        live.dropped(),
        live.capacity()
    );
    println!(
        "stage profile over {} ticks: admit {}ns  control {}ns  step {}ns  publish {}ns",
        report.profile.ticks,
        report.profile.admit_ns,
        report.profile.control_ns,
        report.profile.step_ns,
        report.profile.publish_ns,
    );

    // Replay the recorded session with the tracer on.
    let mut fresh = DreamScheduler::new(DreamConfig::full());
    let replay = report
        .record
        .replay_traced(TraceConfig::default(), &mut fresh)?;
    assert_eq!(
        report.outcome.metrics().fingerprint(),
        replay.metrics().fingerprint(),
        "the recorded live session must replay bit-identically"
    );
    let replayed = replay.trace().expect("replay tracer was on");

    // Export both traces in both formats and compare bytes.
    let dir = dream_bench::artifacts_dir("flight");
    let pairs = [
        ("flight_live.json", live.to_chrome_json()),
        ("flight_live.csv", live.to_csv()),
        ("flight_replay.json", replayed.to_chrome_json()),
        ("flight_replay.csv", replayed.to_csv()),
    ];
    for (name, bytes) in &pairs {
        std::fs::write(dir.join(name), bytes)?;
        println!("wrote {} ({} bytes)", dir.join(name).display(), bytes.len());
    }
    assert_eq!(
        pairs[0].1, pairs[2].1,
        "live and replay JSON exports must be byte-identical"
    );
    assert_eq!(
        pairs[1].1, pairs[3].1,
        "live and replay CSV exports must be byte-identical"
    );
    println!("trace identity: live == replay, byte for byte ✔");
    Ok(())
}
