//! Scheduler shoot-out on one stressed platform: every baseline against
//! DREAM on AR_Social (a miniature of the paper's Figure 7).
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use dream::prelude::*;

type SchedulerFactory = Box<dyn Fn() -> Box<dyn Scheduler>>;

fn run_one(
    scheduler: &mut dyn Scheduler,
    seed: u64,
) -> Result<Metrics, Box<dyn std::error::Error>> {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::ar_social(CascadeProbability::new(0.5)?);
    Ok(SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(2_000))
        .seed(seed)
        .run(scheduler)?
        .into_metrics())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("AR_Social on 4K 1WS+2OS, 2 s window, seed-averaged over 3 runs\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "scheduler", "UXCost", "DLV rate", "energy", "switches"
    );

    // Each closure builds a fresh scheduler per seed (schedulers carry
    // state across a run).
    let entries: Vec<(&str, SchedulerFactory)> = vec![
        ("FCFS", Box::new(|| Box::new(FcfsScheduler::new()))),
        ("Static", Box::new(|| Box::new(StaticScheduler::new()))),
        ("EDF", Box::new(|| Box::new(EdfScheduler::new()))),
        ("Veltair", Box::new(|| Box::new(VeltairScheduler::new()))),
        ("Planaria", Box::new(|| Box::new(PlanariaScheduler::new()))),
        (
            "DREAM-Full",
            Box::new(|| Box::new(DreamScheduler::new(DreamConfig::full()))),
        ),
    ];

    for (name, make) in entries {
        let mut uxcost = 0.0;
        let mut dlv = 0.0;
        let mut energy = 0.0;
        let mut switches = 0u64;
        let seeds = [11u64, 12, 13];
        for &seed in &seeds {
            let mut scheduler = make();
            let metrics = run_one(scheduler.as_mut(), seed)?;
            let report = UxCostReport::from_metrics(&metrics);
            uxcost += report.uxcost() / seeds.len() as f64;
            dlv += metrics.mean_violation_rate() / seeds.len() as f64;
            energy += metrics.mean_normalized_energy() / seeds.len() as f64;
            switches += metrics.context_switches / seeds.len() as u64;
        }
        println!("{name:<18} {uxcost:>10.4} {dlv:>10.4} {energy:>10.4} {switches:>10}");
    }
    println!("\nLower is better everywhere. DREAM here runs untuned (α = β = 1);");
    println!("the bench harness additionally applies the §3.6 offline tuning.");
    Ok(())
}
