//! Export-then-replay: swap the analytical cost model for a table-driven
//! MAESTRO-style import and reproduce the identical simulation.
//!
//! ```text
//! cargo run --release --example table_backend
//! ```
//!
//! The demo does the round trip a real MAESTRO deployment needs:
//!
//! 1. build a workload under the analytical backend,
//! 2. export its per-(layer, accelerator) cost table to CSV and JSON
//!    (`TableBackend::derive` — the fixture generator),
//! 3. load the CSV back as a [`TableBackend`],
//! 4. replay the same scenario/seed under the imported table and verify
//!    the run is **bit-identical** to the analytical one — while the two
//!    workloads still identify as different backends (digests differ).

use std::sync::Arc;

use dream::prelude::*;
use dream_cost::{CostBackend, TableBackend};
use dream_models::ScenarioKind;

const HORIZON_MS: u64 = 500;
const SEED: u64 = 11;

fn builder(platform: Platform, scenario: Scenario) -> SimulationBuilder {
    SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(HORIZON_MS))
        .seed(SEED)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::new(ScenarioKind::ArCall, CascadeProbability::new(0.5)?);

    // 1. The analytical run (and the layer universe its workload needs).
    let ws = builder(platform.clone(), scenario.clone()).build_workload()?;
    let mut sched = DreamScheduler::new(DreamConfig::full());
    let analytical_metrics = builder(platform.clone(), scenario.clone())
        .run(&mut sched)?
        .into_metrics();

    // 2. Export the cost table — the import fixture a MAESTRO run would
    //    otherwise produce.
    let model = CostModel::paper_default();
    let exported = TableBackend::derive("ar-call-demo", &model, &platform, ws.layers())?;
    let dir = dream_bench::artifacts_dir("tables");
    let csv_path = dir.join("ar_call_costs.csv");
    let json_path = dir.join("ar_call_costs.json");
    exported.save(&csv_path)?;
    exported.save(&json_path)?;
    println!(
        "exported {} layer rows, {} gang rows, {} accelerators",
        exported.layer_entry_count(),
        exported.gang_entry_count(),
        exported.accelerator_names().count()
    );
    println!("  CSV:  {}", csv_path.display());
    println!("  JSON: {}", json_path.display());

    // 3. Import the CSV as a backend of its own.
    let table: Arc<dyn CostBackend> = Arc::new(TableBackend::load(&csv_path)?);
    println!(
        "digests: analytical {:016x} vs table {:016x} (distinct identities)",
        model.calibration_digest(),
        table.calibration_digest()
    );
    assert_ne!(model.calibration_digest(), table.calibration_digest());

    // 4. Replay under the imported table.
    let mut sched = DreamScheduler::new(DreamConfig::full());
    let table_metrics = builder(platform, scenario)
        .cost_backend(Arc::clone(&table))
        .run(&mut sched)?
        .into_metrics();

    println!(
        "analytical fingerprint {:016x}, table-replay fingerprint {:016x}",
        analytical_metrics.fingerprint(),
        table_metrics.fingerprint()
    );
    assert_eq!(
        analytical_metrics.fingerprint(),
        table_metrics.fingerprint(),
        "the imported table must reproduce the analytical run bit-for-bit"
    );
    println!("bit-identical ✔");
    Ok(())
}
