//! Bring your own silicon: define a custom asymmetric platform and a
//! custom cost-model calibration, then explore how the (α, β) search
//! behaves on it (a miniature of the paper's Figures 10/11).
//!
//! ```text
//! cargo run --release --example custom_hardware
//! ```

use dream::core::{ObjectiveKind, ParamOptimizer, ScoreParams};
use dream::cost::{AcceleratorConfig, CostModel, CostParams, Dataflow};
use dream::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hypothetical wearable SoC: one big weight-stationary array, one
    // small output-stationary helper, and a tiny always-on array — 28 GB/s
    // of LPDDR split by compute share.
    let platform = Platform::new(
        "wearable-soc",
        vec![
            AcceleratorConfig::new(
                "big-WS",
                3072,
                Dataflow::WeightStationary,
                0.6,
                16.0,
                5 << 20,
            )?,
            AcceleratorConfig::new("mid-OS", 768, Dataflow::OutputStationary, 0.6, 8.0, 2 << 20)?,
            AcceleratorConfig::new(
                "tiny-OS",
                256,
                Dataflow::OutputStationary,
                0.6,
                4.0,
                1 << 20,
            )?,
        ],
    )?;

    // A more aggressive calibration: cheaper SRAM, pricier DRAM.
    let mut params = CostParams::paper_defaults();
    params.sram_energy_pj_per_byte = 0.6;
    params.dram_energy_pj_per_byte = 28.0;
    let cost_model = CostModel::new(params)?;

    let scenario = || Scenario::vr_gaming(CascadeProbability::default());

    // Evaluate one (α, β) candidate with a short simulation.
    let evaluate = |p: ScoreParams| -> f64 {
        let mut sched = DreamScheduler::new(DreamConfig::mapscore().with_params(p));
        let metrics = SimulationBuilder::new(platform.clone(), scenario())
            .duration(Millis::new(600))
            .seed(99)
            .cost_model(cost_model.clone())
            .run(&mut sched)
            .expect("valid simulation")
            .into_metrics();
        ObjectiveKind::UxCost.evaluate(&metrics)
    };

    println!("searching (α, β) for VR_Gaming on {platform}:");
    let trace = ParamOptimizer::new(ScoreParams::neutral()).run(evaluate);
    for step in &trace.steps {
        println!(
            "  step {}: center {} radius {:.3} -> best {} (UXCost {:.4})",
            step.index, step.center, step.radius, step.best.0, step.best.1
        );
    }
    println!(
        "converged to {} with UXCost {:.4} after {} evaluations",
        trace.final_params,
        trace.final_cost,
        trace.evaluations()
    );

    // Deploy the tuned parameters for a full-length run.
    let mut tuned = DreamScheduler::new(DreamConfig::full().with_params(trace.final_params));
    let outcome = SimulationBuilder::new(platform.clone(), scenario())
        .duration(Millis::new(2_000))
        .seed(123)
        .cost_model(cost_model)
        .run(&mut tuned)?;
    let report = UxCostReport::from_metrics(outcome.metrics());
    println!("\ndeployed run:\n{report}");
    Ok(())
}
