//! Quickstart: run one RTMM scenario under DREAM and print the UXCost
//! report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dream::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hardware: Table 2's 4K-PE heterogeneous platform — one 2048-PE
    // weight-stationary accelerator plus two 1024-PE output-stationary
    // ones, sharing 8 MiB of SRAM and 90 GB/s of DRAM bandwidth.
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);

    // Workload: the AR call scenario — keyword spotting cascading into
    // GNMT translation (50% trigger probability), plus a SkipNet visual
    // context model whose residual blocks are skipped dynamically.
    let scenario = Scenario::ar_call(CascadeProbability::new(0.5)?);

    // Scheduler: full DREAM (MapScore dispatch + smart frame drop +
    // supernet switching).
    let mut scheduler = DreamScheduler::new(DreamConfig::full());

    let outcome = SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(2_000))
        .seed(42)
        .run(&mut scheduler)?;

    let metrics = outcome.metrics();
    let report = UxCostReport::from_metrics(metrics);
    println!("{report}");
    println!();
    println!("layers executed   : {}", metrics.layer_executions);
    println!("context switches  : {}", metrics.context_switches);
    println!(
        "mean utilisation  : {:.1}%",
        100.0 * metrics.mean_utilization()
    );
    println!("frames dropped    : {}", scheduler.total_drops());
    println!("final (α, β)      : {}", scheduler.current_params());
    Ok(())
}
