//! Trace replay: drive the simulator from a recorded request log instead
//! of the paper's fixed-FPS pipelines, and compare schedulers on the
//! request-latency percentiles the log's users would experience.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```
//!
//! The demo does the round trip a served-traffic experiment needs:
//! record a bursty stream into an [`ArrivalTrace`], serialize it to the
//! text format, parse it back, and replay the identical traffic under
//! two schedulers.

use dream::prelude::*;
use dream_sim::{ArrivalTrace, Millis, MmppArrivals, SimTime, TraceArrivals};

const HORIZON_MS: u64 = 800;

fn builder(platform: Platform, scenario: Scenario) -> SimulationBuilder {
    SimulationBuilder::new(platform, scenario)
        .duration(Millis::new(HORIZON_MS))
        .seed(7)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
    let scenario = Scenario::ar_call(CascadeProbability::new(0.5)?);

    // 1. Record a bursty request log offline: calm traffic at 0.7× the
    //    nominal rate, bursts at 2.5×.
    let ws = builder(platform.clone(), scenario.clone()).build_workload()?;
    let mut bursty = MmppArrivals::new(0.7, 2.5, 0.2, 0.25);
    let horizon = SimTime::from(Millis::new(HORIZON_MS));
    let recorded = ArrivalTrace::record("bursty-log", &ws, horizon, 7, &mut bursty);

    // 2. Serialize to the text format and load it back — what replaying
    //    a log captured from a real deployment looks like.
    let text = recorded.to_csv();
    let trace = ArrivalTrace::parse("bursty-log", &text)?;
    assert_eq!(trace, recorded);
    println!(
        "replaying {} arrivals over {} models ({} ms horizon)\n",
        trace.len(),
        trace.keys().count(),
        HORIZON_MS
    );
    println!("first log lines:");
    for line in text.lines().take(5) {
        println!("  {line}");
    }
    println!();

    // 3. Replay the identical traffic under FCFS and full DREAM.
    for dream in [false, true] {
        let mut fcfs = FcfsScheduler::new();
        let mut full = DreamScheduler::new(DreamConfig::full());
        let scheduler: &mut dyn dream_sim::Scheduler = if dream { &mut full } else { &mut fcfs };
        let metrics = builder(platform.clone(), scenario.clone())
            .arrivals(TraceArrivals::new(trace.clone()))
            .run(scheduler)?
            .into_metrics();
        let pct = |q| {
            metrics
                .sojourn_percentile_ms(q)
                .map_or_else(|| "-".into(), |ms| format!("{ms:7.3} ms"))
        };
        println!(
            "{:10} p50 {}  p95 {}  p99 {}  violations {:.3}",
            scheduler.name(),
            pct(0.50),
            pct(0.95),
            pct(0.99),
            metrics.mean_violation_rate(),
        );
        for (key, s) in metrics.models() {
            println!(
                "  {key} {:12} released {:3}  on-time {:3}  p99 {}",
                s.model_name,
                s.released,
                s.completed_on_time,
                s.sojourn_percentile_ms(0.99)
                    .map_or_else(|| "-".into(), |ms| format!("{ms:.3} ms")),
            );
        }
        println!();
    }
    Ok(())
}
