//! Minimal offline stand-in for the `criterion` crate.
//!
//! Supports `Criterion::bench_function`, `benchmark_group` (with
//! `sample_size` and `finish`), and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warmup, then
//! timed batches, and prints the mean ns/iter to stdout. Results are
//! also collected so callers can export them (see
//! [`Criterion::results`]).

// A benchmark harness exists to read the wall clock; exempt the shim
// from the workspace-wide disallowed-methods determinism lint.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/name` when run inside a group).
    pub id: String,
    /// Mean wall time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Iterations the mean was computed over.
    pub iterations: u64,
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    target_time: Duration,
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target_time: Duration::from_millis(300),
            sample_size: 10,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let r = run_bench(id, self.target_time, self.sample_size, f);
        self.results.push(r);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let r = run_bench(&full, self.parent.target_time, samples, f);
        self.parent.results.push(r);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over an adaptively chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim each timed sample at ~1/10 of the per-call budget.
        let per_sample = Duration::from_millis(30);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iterations += iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    target: Duration,
    samples: usize,
    mut f: F,
) -> BenchResult {
    let mut b = Bencher::default();
    let start = Instant::now();
    for _ in 0..samples {
        f(&mut b);
        if start.elapsed() > target * 4 {
            break;
        }
    }
    let mean_ns = if b.iterations == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iterations as f64
    };
    println!(
        "bench: {id:50} {mean_ns:14.1} ns/iter  ({} iters)",
        b.iterations
    );
    BenchResult {
        id: id.to_string(),
        mean_ns,
        iterations: b.iterations,
    }
}

/// Groups benchmark functions into one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_result() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
            sample_size: 2,
            results: Vec::new(),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].iterations > 0);
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
        assert_eq!(c.results()[1].id, "g/inner");
    }
}
