//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements exactly the subset this workspace's property tests use:
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, range/tuple strategies with
//! `prop_map`, and `proptest::collection::vec`. Test cases are
//! generated deterministically from the test's module path and case
//! index, so failures reproduce exactly. There is no shrinking: a
//! failing case reports its inputs via the normal assertion message.

/// Deterministic SplitMix64 generator seeding each test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An rng unique to `(test name, case index)` so every case draws an
    /// independent, reproducible stream.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration (`cases` = values generated per property).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 32 keeps simulation-heavy
        // properties fast while still sweeping the input space.
        ProptestConfig { cases: 32 }
    }
}

/// A value generator. Combinators consume `self`, mirroring proptest.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds a choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                self.start + draw as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_unit_f64()
    }
}

/// Strategy for [`Arbitrary`] values.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Declares deterministic property tests. Each `fn name(arg in strategy,
/// …) { body }` becomes a `#[test]` looping over the configured number
/// of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )+};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniformly picks one of several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(1u32..4, 2..6),
            w in prop_oneof![Just(7u32), 10u32..12],
            (a, b) in (0u8..3, 0u8..3).prop_map(|(x, y)| (x, y)),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
            prop_assert!(w == 7 || (10..12).contains(&w));
            prop_assert!(a < 3 && b < 3);
            prop_assert_eq!(crate::any::<bool>().generate(
                &mut crate::TestRng::deterministic("x", 0)),
                crate::any::<bool>().generate(&mut crate::TestRng::deterministic("x", 0)));
        }
    }
}
