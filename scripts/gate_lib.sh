# Shared measured-vs-baseline gating logic for the perf regression
# checks (sourced by check_hotpath.sh and check_events.sh — not
# executable on its own).
#
#   gate_ratio <name> <key> <unit> <baseline.json> <fresh.json> <max_regression>
#
# Extracts the first `"<key>": <number>` from each JSON file, prints the
# measured-vs-baseline ratio (so CI logs show perf drift long before it
# trips the gate), and fails when the fresh number falls below
# baseline * (1 - max_regression). Exit codes: 0 ok, 1 regression,
# 2 unreadable values — matching the callers' documented contract.

extract_json_number() {
    # Tolerate a missing key under the callers' `set -euo pipefail`: an
    # empty result must reach gate_ratio's explicit exit-2 diagnostic,
    # not kill the script with a bare grep status.
    grep -o "\"$2\": *[0-9.]*" "$1" 2>/dev/null | head -1 | grep -o '[0-9.]*$' || true
}

gate_ratio() {
    local name="$1" key="$2" unit="$3" baseline="$4" fresh="$5" max_regression="$6"
    local base new
    base=$(extract_json_number "$baseline" "$key")
    new=$(extract_json_number "$fresh" "$key")
    if [ -z "$base" ] || [ -z "$new" ]; then
        echo "check_${name}: could not read ${key} (baseline='$base' fresh='$new')" >&2
        return 2
    fi
    awk -v base="$base" -v new="$new" -v max="$max_regression" \
        -v name="$name" -v uname="$(echo "$name" | tr '[:lower:]' '[:upper:]')" -v unit="$unit" 'BEGIN {
        floor = base * (1.0 - max)
        ratio = new / base
        drift = (ratio - 1.0) * 100.0
        # Always print the measured-vs-baseline ratio first, so CI logs
        # show perf drift long before it trips the regression gate.
        printf "%s: measured %.0f vs baseline %.0f %s — ratio %.3f (%+.1f%% drift, gate floor %.0f)\n",
               name, new, base, unit, ratio, drift, floor
        if (new < floor) {
            printf "%s REGRESSION: %.0f %s is %.1f%% of the %.0f baseline (floor: %.0f)\n",
                   uname, new, unit, ratio * 100.0, base, floor
            exit 1
        }
        printf "%s ok (>%.0f%% of baseline retained)\n", name, (1.0 - max) * 100.0
    }'
}
