#!/usr/bin/env bash
# Distributed replay-equivalence gate.
#
# Spawns 4 dream-worker processes on ephemeral ports, shards a real
# experiment grid across them with dream-coordinator, and fails unless
# the merged fingerprint is bit-identical to the single-process run of
# the same grid (--verify recomputes it locally). Also exercises the
# recorded-trace return path (--record-traces/--trace-out) and the
# broadcast drain (--drain), so the workers exit on their own.
#
# Usage: scripts/check_cluster.sh [out_dir]
#   out_dir (default: cluster_artifacts/) receives the merged outcome
#   CSV and trace for CI to upload.
#
# Tunables: CLUSTER_SEEDS (default 2), CLUSTER_DURATION_MS (default 300),
# CLUSTER_WORKERS (default 4).
set -euo pipefail

out_dir="${1:-cluster_artifacts}"
n_workers="${CLUSTER_WORKERS:-4}"
seeds="${CLUSTER_SEEDS:-2}"
duration_ms="${CLUSTER_DURATION_MS:-300}"

mkdir -p "$out_dir"
state_dir="$(mktemp -d)"
worker_pids=()

cleanup() {
    for pid in "${worker_pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$state_dir"
}
trap cleanup EXIT

echo "building release binaries..."
cargo build --release -q -p dream-coordinator

worker_bin=target/release/dream-worker
coordinator_bin=target/release/dream-coordinator

addrs=()
for i in $(seq 1 "$n_workers"); do
    port_file="$state_dir/worker$i.port"
    "$worker_bin" --addr 127.0.0.1:0 --port-file "$port_file" --seed "$i" \
        >"$state_dir/worker$i.log" 2>&1 &
    worker_pids+=($!)
    # The worker writes host:port atomically after binding; poll for it.
    for _ in $(seq 1 100); do
        [ -s "$port_file" ] && break
        sleep 0.1
    done
    [ -s "$port_file" ] || { echo "worker $i never bound"; exit 1; }
    addrs+=("$(cat "$port_file")")
    echo "worker $i up at ${addrs[-1]}"
done

workers_csv=$(IFS=, ; echo "${addrs[*]}")

echo "running distributed grid across $n_workers workers..."
"$coordinator_bin" \
    --workers "$workers_csv" \
    --schedulers fcfs,edf,dream-full \
    --scenarios ar_call,vr_gaming \
    --seeds "$seeds" \
    --duration-ms "$duration_ms" \
    --record-traces \
    --verify \
    --out "$out_dir/cluster_outcomes.csv" \
    --trace-out "$out_dir/cluster_trace.csv" \
    --drain

# --verify exits non-zero on any fingerprint mismatch, so reaching this
# point means the distributed merge was bit-identical. The drain
# broadcast lets every worker exit cleanly; reap them to prove it.
for i in "${!worker_pids[@]}"; do
    if ! wait "${worker_pids[$i]}"; then
        echo "worker $((i + 1)) exited non-zero:"
        cat "$state_dir/worker$((i + 1)).log"
        exit 1
    fi
done
worker_pids=()

grep -q "fingerprint=" "$state_dir"/worker1.log || {
    echo "worker 1 never reported a drain fingerprint:"
    cat "$state_dir/worker1.log"
    exit 1
}
[ -s "$out_dir/cluster_trace.csv" ] || { echo "merged trace is empty"; exit 1; }

echo "cluster gate OK: merged fingerprints bit-identical to single-process run"
echo "artifacts: $out_dir/cluster_outcomes.csv, $out_dir/cluster_trace.csv"
