#!/usr/bin/env bash
# Flight-recorder trace-identity gate.
#
# Runs the flight_recorder example: a live serving session with the
# tracer on (admissions, a fault window, a hot-swap, a drain), exported
# to Chrome/Perfetto JSON and CSV, then the batch replay of the same
# recorded session, exported again. The example asserts byte identity
# in-process; this gate re-checks the bytes on disk with cmp (a second,
# independent witness), validates the exported JSON non-trivially, and
# leaves both artifact pairs for CI to upload.
#
# Usage: scripts/check_trace.sh [out_dir]
#   out_dir (default: trace_artifacts/) receives the four exports.
set -euo pipefail

# shellcheck source=scripts/gate_lib.sh
. "$(dirname "$0")/gate_lib.sh"

out_dir="${1:-trace_artifacts}"
mkdir -p "$out_dir"

echo "building release example..."
cargo build --release -q --example flight_recorder

echo "running live session + batch replay..."
DREAM_ARTIFACTS_DIR="$out_dir" target/release/examples/flight_recorder

live_json="$out_dir/flight/flight_live.json"
live_csv="$out_dir/flight/flight_live.csv"
replay_json="$out_dir/flight/flight_replay.json"
replay_csv="$out_dir/flight/flight_replay.csv"

for f in "$live_json" "$live_csv" "$replay_json" "$replay_csv"; do
    [ -s "$f" ] || { echo "missing or empty artifact: $f"; exit 1; }
done

# The gate proper: any byte divergence between the live trace and its
# replay is a determinism break.
cmp "$live_json" "$replay_json" || {
    echo "TRACE DIVERGENCE: live JSON != replay JSON"; exit 1;
}
cmp "$live_csv" "$replay_csv" || {
    echo "TRACE DIVERGENCE: live CSV != replay CSV"; exit 1;
}
echo "trace identity: JSON and CSV byte-identical across live/replay"

# Non-trivial JSON validation: the export must carry real spans and
# counter samples, not just a well-formed shell.
if command -v python3 >/dev/null 2>&1; then
    python3 - "$live_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
phases = {e["ph"] for e in events}
assert "X" in phases, "no dispatch spans in trace"
assert "i" in phases, "no lifecycle instants in trace"
assert "C" in phases, "no counter samples in trace"
assert any(str(e.get("name", "")).startswith("fault:") for e in events), "no fault markers"
spans = [e for e in events if e["ph"] == "X"]
assert all(e["dur"] >= 0 for e in spans), "negative span duration"
assert doc["displayTimeUnit"] == "ns"
print(f"JSON valid: {len(events)} events, {len(spans)} dispatch spans")
EOF
else
    # Fallback shape check when python3 is unavailable.
    grep -q '"traceEvents"' "$live_json"
    grep -q '"ph": *"X"' "$live_json" || grep -q '"ph":"X"' "$live_json"
    echo "JSON shape check passed (python3 unavailable)"
fi

# CSV sanity: header + monotone-stamped rows exist.
head -1 "$live_csv" | grep -q '^at_ns,kind' || {
    echo "CSV header missing"; exit 1;
}
rows=$(wc -l < "$live_csv")
[ "$rows" -gt 100 ] || { echo "CSV implausibly small ($rows rows)"; exit 1; }

echo "artifacts:"
ls -l "$out_dir/flight"
echo "CHECK_TRACE OK"
