#!/usr/bin/env bash
# Hot-path perf regression gate.
#
# Compares the freshly benchmarked decisions_per_sec (written by
# `cargo bench --bench hotpath` into BENCH_hotpath.json) against the
# committed baseline and fails when the fresh number regresses by more
# than the allowed fraction (default 20%, override with
# HOTPATH_MAX_REGRESSION=0.30 etc.). Ratio/gating logic lives in
# scripts/gate_lib.sh, shared with check_events.sh.
#
# Usage: scripts/check_hotpath.sh <baseline.json> [fresh.json]
# CI captures the committed file before the bench overwrites it:
#   cp BENCH_hotpath.json /tmp/hotpath_baseline.json
#   cargo bench --bench hotpath
#   scripts/check_hotpath.sh /tmp/hotpath_baseline.json BENCH_hotpath.json
set -euo pipefail

# shellcheck source=scripts/gate_lib.sh
. "$(dirname "$0")/gate_lib.sh"

baseline="${1:?usage: check_hotpath.sh <baseline.json> [fresh.json]}"
fresh="${2:-BENCH_hotpath.json}"
max_regression="${HOTPATH_MAX_REGRESSION:-0.20}"

gate_ratio hotpath decisions_per_sec "decisions/s" "$baseline" "$fresh" "$max_regression"
