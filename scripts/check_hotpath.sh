#!/usr/bin/env bash
# Hot-path perf regression gate.
#
# Compares the freshly benchmarked decisions_per_sec (written by
# `cargo bench --bench hotpath` into BENCH_hotpath.json) against the
# committed baseline and fails when the fresh number regresses by more
# than the allowed fraction (default 20%, override with
# HOTPATH_MAX_REGRESSION=0.30 etc.).
#
# Usage: scripts/check_hotpath.sh <baseline.json> [fresh.json]
# CI captures the committed file before the bench overwrites it:
#   cp BENCH_hotpath.json /tmp/hotpath_baseline.json
#   cargo bench --bench hotpath
#   scripts/check_hotpath.sh /tmp/hotpath_baseline.json BENCH_hotpath.json
set -euo pipefail

baseline="${1:?usage: check_hotpath.sh <baseline.json> [fresh.json]}"
fresh="${2:-BENCH_hotpath.json}"
max_regression="${HOTPATH_MAX_REGRESSION:-0.20}"

extract() {
    grep -o '"decisions_per_sec": *[0-9.]*' "$1" | head -1 | grep -o '[0-9.]*$'
}

base=$(extract "$baseline")
new=$(extract "$fresh")
if [ -z "$base" ] || [ -z "$new" ]; then
    echo "check_hotpath: could not read decisions_per_sec (baseline='$base' fresh='$new')" >&2
    exit 2
fi

awk -v base="$base" -v new="$new" -v max="$max_regression" 'BEGIN {
    floor = base * (1.0 - max)
    ratio = new / base
    drift = (ratio - 1.0) * 100.0
    # Always print the measured-vs-baseline ratio first, so CI logs show
    # perf drift long before it trips the regression gate.
    printf "hotpath: measured %.0f vs baseline %.0f decisions/s — ratio %.3f (%+.1f%% drift, gate floor %.0f)\n",
           new, base, ratio, drift, floor
    if (new < floor) {
        printf "HOTPATH REGRESSION: %.0f decisions/s is %.1f%% of the %.0f baseline (floor: %.0f)\n",
               new, ratio * 100.0, base, floor
        exit 1
    }
    printf "hotpath ok (>%.0f%% of baseline retained)\n", (1.0 - max) * 100.0
}'
