#!/usr/bin/env bash
# Engine-stepping perf regression gate.
#
# Compares the freshly benchmarked single-session events_per_sec (written
# by `cargo bench --bench events` into BENCH_events.json) against the
# committed baseline and fails when the fresh number regresses by more
# than the allowed fraction (default 20%, override with
# EVENTS_MAX_REGRESSION=0.30 etc.). The top-level events_per_sec field is
# the gated figure; the multi-session block's aggregate rate is reported
# for trend-watching but not gated (it divides across many queues and is
# noisier). Ratio/gating logic lives in scripts/gate_lib.sh, shared with
# check_hotpath.sh.
#
# Usage: scripts/check_events.sh <baseline.json> [fresh.json]
# CI captures the committed file before the bench overwrites it:
#   cp BENCH_events.json /tmp/events_baseline.json
#   cargo bench --bench events
#   scripts/check_events.sh /tmp/events_baseline.json BENCH_events.json
set -euo pipefail

# shellcheck source=scripts/gate_lib.sh
. "$(dirname "$0")/gate_lib.sh"

baseline="${1:?usage: check_events.sh <baseline.json> [fresh.json]}"
fresh="${2:-BENCH_events.json}"
max_regression="${EVENTS_MAX_REGRESSION:-0.20}"

gate_ratio events events_per_sec "events/s" "$baseline" "$fresh" "$max_regression"
