#!/usr/bin/env bash
# Engine-stepping perf regression gate.
#
# Compares the freshly benchmarked single-session events_per_sec (written
# by `cargo bench --bench events` into BENCH_events.json) against the
# committed baseline and fails when the fresh number regresses by more
# than the allowed fraction (default 20%, override with
# EVENTS_MAX_REGRESSION=0.30 etc.). The top-level events_per_sec field is
# the gated figure; the multi-session block's aggregate rate is reported
# for trend-watching but not gated (it divides across many queues and is
# noisier).
#
# Usage: scripts/check_events.sh <baseline.json> [fresh.json]
# CI captures the committed file before the bench overwrites it:
#   cp BENCH_events.json /tmp/events_baseline.json
#   cargo bench --bench events
#   scripts/check_events.sh /tmp/events_baseline.json BENCH_events.json
set -euo pipefail

baseline="${1:?usage: check_events.sh <baseline.json> [fresh.json]}"
fresh="${2:-BENCH_events.json}"
max_regression="${EVENTS_MAX_REGRESSION:-0.20}"

extract() {
    grep -o '"events_per_sec": *[0-9.]*' "$1" | head -1 | grep -o '[0-9.]*$'
}

base=$(extract "$baseline")
new=$(extract "$fresh")
if [ -z "$base" ] || [ -z "$new" ]; then
    echo "check_events: could not read events_per_sec (baseline='$base' fresh='$new')" >&2
    exit 2
fi

awk -v base="$base" -v new="$new" -v max="$max_regression" 'BEGIN {
    floor = base * (1.0 - max)
    ratio = new / base
    drift = (ratio - 1.0) * 100.0
    # Always print the measured-vs-baseline ratio first, so CI logs show
    # perf drift long before it trips the regression gate.
    printf "events: measured %.0f vs baseline %.0f events/s — ratio %.3f (%+.1f%% drift, gate floor %.0f)\n",
           new, base, ratio, drift, floor
    if (new < floor) {
        printf "EVENTS REGRESSION: %.0f events/s is %.1f%% of the %.0f baseline (floor: %.0f)\n",
               new, ratio * 100.0, base, floor
        exit 1
    }
    printf "events ok (>%.0f%% of baseline retained)\n", (1.0 - max) * 100.0
}'
