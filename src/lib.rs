//! # DREAM — a dynamic scheduler for dynamic real-time multi-model ML workloads
//!
//! This crate is the facade of a full reproduction of *DREAM: A Dynamic
//! Scheduler for Dynamic Real-time Multi-model ML Workloads* (ASPLOS 2023).
//! It re-exports the building blocks:
//!
//! * [`models`] — layer-level descriptions of the fourteen workload networks,
//!   their dynamic control structure (supernets, early exits, layer skipping),
//!   and the five industry-derived RTMM scenarios of the paper's Table 3.
//! * [`cost`] — an analytical accelerator cost model (weight-stationary and
//!   output-stationary dataflows) standing in for MAESTRO, plus the eight
//!   hardware platforms of Table 2.
//! * [`sim`] — a deterministic discrete-event simulator of a multi-accelerator
//!   system executing RTMM workloads under a pluggable scheduler. The engine
//!   is a *staged executor* split across an `engine/` module tree —
//!   `arrivals` (phase starts, frame releases), `completion` (layer
//!   finishes), `dynamics` (cascade/skip/exit gates), `dispatch` (decision
//!   validation + start), and `accounting` (metrics) — over a slab-backed
//!   task arena and a binary-heap event queue. Schedulers receive a
//!   borrowed, incrementally-maintained [`sim::SystemView`] with indexed
//!   accessors for ready tasks, accelerator occupancy, and slack; nothing
//!   is reconstructed per event.
//! * [`core`] — the DREAM scheduler itself: MapScore (Algorithm 1), UXCost
//!   (Algorithm 2), the smart frame-drop engine, the adaptivity engine with
//!   online α/β tuning, and supernet switching.
//! * [`baselines`] — FCFS, a static offline scheduler, and Veltair- and
//!   Planaria-style schedulers used as comparison points in the paper.
//! * [`serve`] — the live serving runtime: bounded channel/TCP/Unix-socket
//!   ingress with explicit admission policies feeds a long-running
//!   [`sim::LiveSession`] (incremental engine stepping, scenario hot-swap,
//!   graceful drain) and publishes live metrics snapshots. Every admitted
//!   arrival is recorded, and a session's batch replay is bit-identical —
//!   live serving *is* the simulator, fed incrementally.
//! * `dream-bench` (dev-only) — the experiment harness. Its
//!   `ExperimentGrid` fans whole (scheduler × scenario × platform × seed)
//!   figure grids out across a thread pool with deterministic, seed-keyed
//!   aggregation: the same grid produces bit-identical metrics for 1 and
//!   N worker threads.
//!
//! # Quickstart
//!
//! ```
//! use dream::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Hardware: 4K PEs split as one weight-stationary and two
//! // output-stationary sub-accelerators (Table 2, row "1 WS + 2 OS").
//! let platform = Platform::preset(PlatformPreset::Hetero4kWs1Os2);
//!
//! // Workload: the AR call scenario (keyword spotting -> translation,
//! // plus a SkipNet-based visual context model).
//! let scenario = Scenario::ar_call(CascadeProbability::new(0.5)?);
//!
//! // Scheduler: full DREAM (score-driven dispatch + smart frame drop +
//! // supernet switching + online parameter adaptation).
//! let mut scheduler = DreamScheduler::new(DreamConfig::full());
//!
//! let outcome = SimulationBuilder::new(platform, scenario)
//!     .duration(Millis::new(500))
//!     .seed(7)
//!     .run(&mut scheduler)?;
//!
//! let report = UxCostReport::from_metrics(outcome.metrics());
//! println!("UXCost = {:.4}", report.uxcost());
//! # Ok(())
//! # }
//! ```

pub use dream_baselines as baselines;
pub use dream_core as core;
pub use dream_cost as cost;
pub use dream_models as models;
pub use dream_serve as serve;
pub use dream_sim as sim;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use dream_baselines::{
        EdfScheduler, FcfsScheduler, PlanariaScheduler, StaticScheduler, VeltairScheduler,
    };
    pub use dream_core::{
        DreamConfig, DreamScheduler, ObjectiveKind, ParamOptimizer, ScoreParams, UxCostReport,
    };
    pub use dream_cost::{
        AcceleratorConfig, CostBackend, CostModel, Dataflow, Platform, PlatformPreset, TableBackend,
    };
    pub use dream_models::{
        CascadeProbability, Model, ModelGraph, NodeId, PipelineId, Scenario, ScenarioKind,
    };
    pub use dream_sim::{
        ArrivalSource, ArrivalTrace, LiveSession, LiveSessionBuilder, LiveSessionRecord, Metrics,
        Millis, MmppArrivals, PeriodicArrivals, PoissonArrivals, Scheduler, SimOutcome, SimTime,
        SimulationBuilder, TraceArrivals,
    };
}
